package tuner

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTrisectMaxFindsUnimodalPeak(t *testing.T) {
	for peak := 0; peak <= 30; peak++ {
		peak := peak
		f := func(x int) float64 { return -math.Abs(float64(x - peak)) }
		got, _ := TrisectMax(0, 30, f)
		if got != peak {
			t.Fatalf("peak %d: TrisectMax found %d", peak, got)
		}
	}
}

func TestTrisectMaxFlatAndTinyRanges(t *testing.T) {
	got, probes := TrisectMax(5, 5, func(int) float64 { return 1 })
	if got != 5 || probes != 1 {
		t.Fatalf("singleton range: got %d probes %d", got, probes)
	}
	got, _ = TrisectMax(3, 4, func(x int) float64 { return float64(x) })
	if got != 4 {
		t.Fatalf("two-point range: got %d", got)
	}
	// Flat function: any answer in range is fine.
	got, _ = TrisectMax(0, 10, func(int) float64 { return 7 })
	if got < 0 || got > 10 {
		t.Fatalf("flat function answer %d out of range", got)
	}
}

func TestTrisectMaxPanicsOnEmptyRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TrisectMax(2, 1, func(int) float64 { return 0 })
}

func TestTrisectFewerProbesThanExhaustive(t *testing.T) {
	const hi = 1000
	f := func(x int) float64 { return -float64(x-700) * float64(x-700) }
	_, probes := TrisectMax(0, hi, f)
	if probes >= hi/2 {
		t.Fatalf("trisection used %d probes over a %d-point space", probes, hi+1)
	}
}

func TestTrisectMaxPropertyUnimodal(t *testing.T) {
	f := func(peakRaw uint16, spanRaw uint8) bool {
		span := int(spanRaw%100) + 1
		peak := int(peakRaw) % (span + 1)
		fn := func(x int) float64 {
			d := float64(x - peak)
			return 1000 - d*d
		}
		got, _ := TrisectMax(0, span, fn)
		return got == peak
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLinearProbeMax(t *testing.T) {
	best, probes := LinearProbeMax([]int{0, 1000, 2000, 3000}, func(k int) float64 {
		return -math.Abs(float64(k - 2000))
	})
	if best != 2000 || probes != 4 {
		t.Fatalf("best=%d probes=%d", best, probes)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty candidates")
		}
	}()
	LinearProbeMax(nil, func(int) float64 { return 0 })
}

// fakeSystem models the paper's landscape: throughput unimodal in the
// thread split and in MR ways, with a cache-size interaction that shifts
// the ideal split.
type fakeSystem struct {
	measures int
}

func (f *fakeSystem) Bounds() (int, int, int, int) { return 28, 12, 10000, 1000 }

func (f *fakeSystem) Measure(c Config) float64 {
	f.measures++
	idealMR := 20.0 - 8.0*float64(c.CacheItems)/10000.0 // more cache → fewer MR threads
	split := -0.5 * math.Pow(float64(c.MRThreads)-idealMR, 2)
	cache := -math.Abs(float64(c.CacheItems)-6000.0) / 1000.0
	ways := -0.3 * math.Pow(float64(c.MRWays)-9, 2)
	return 100 + split + cache + ways
}

func TestOptimizeFindsGoodConfig(t *testing.T) {
	sys := &fakeSystem{}
	res := Optimize(sys)
	if res.Best.CacheItems != 6000 {
		t.Fatalf("cache items = %d, want 6000", res.Best.CacheItems)
	}
	wantMR := 20 - 8*6000/10000 // 15.2 → 15 or 16
	if res.Best.MRThreads < wantMR-1 || res.Best.MRThreads > wantMR+1 {
		t.Fatalf("MR threads = %d, want ≈%d", res.Best.MRThreads, wantMR)
	}
	if res.Best.MRWays != 9 {
		t.Fatalf("MR ways = %d, want 9", res.Best.MRWays)
	}
	if res.Probes != sys.measures {
		t.Fatalf("probe accounting: %d vs %d", res.Probes, sys.measures)
	}
}

func TestOptimizeMatchesExhaustiveButCheaper(t *testing.T) {
	tri := &fakeSystem{}
	exh := &fakeSystem{}
	r1 := Optimize(tri)
	r2 := OptimizeExhaustive(exh)
	if math.Abs(r1.Score-r2.Score) > 0.5 {
		t.Fatalf("trisection score %.2f vs exhaustive %.2f", r1.Score, r2.Score)
	}
	if r1.Probes >= r2.Probes {
		t.Fatalf("trisection probes %d not cheaper than exhaustive %d", r1.Probes, r2.Probes)
	}
}

type tinySystem struct{}

func (tinySystem) Bounds() (int, int, int, int) { return 1, 2, 0, 0 }
func (tinySystem) Measure(Config) float64       { return 42 }

func TestOptimizeDegenerateSystem(t *testing.T) {
	res := Optimize(tinySystem{})
	if res.Score != 42 || res.Probes != 1 {
		t.Fatalf("degenerate optimize: %+v", res)
	}
}
