package tuner

// Monitor is the auto-tuner's feedback loop trigger (§3.5): it watches
// windowed throughput samples and reports when the load has shifted enough
// that retuning is worthwhile ("the auto-tuner is triggered when the
// system load exhibits significant changes").
//
// The detector keeps an exponential moving average of the sample rate and
// flags a change when a sample deviates from the baseline by more than
// Threshold (relative). After a trigger, the baseline resets to the new
// level so a single shift fires exactly once.
type Monitor struct {
	// Threshold is the relative deviation that counts as a load change
	// (default 0.25 = ±25%).
	Threshold float64
	// Alpha is the EMA smoothing factor for the baseline (default 0.2).
	Alpha float64

	baseline float64
	samples  int
	// warmup samples establish the baseline before triggering (default 3).
	Warmup int
}

func (m *Monitor) threshold() float64 {
	if m.Threshold <= 0 {
		return 0.25
	}
	return m.Threshold
}

func (m *Monitor) alpha() float64 {
	if m.Alpha <= 0 || m.Alpha > 1 {
		return 0.2
	}
	return m.Alpha
}

func (m *Monitor) warmup() int {
	if m.Warmup <= 0 {
		return 3
	}
	return m.Warmup
}

// Observe feeds one window's throughput and reports whether the load has
// shifted enough to warrant retuning.
func (m *Monitor) Observe(rate float64) (changed bool) {
	m.samples++
	if m.samples <= m.warmup() || m.baseline == 0 {
		if m.baseline == 0 {
			m.baseline = rate
		} else {
			a := m.alpha()
			m.baseline = (1-a)*m.baseline + a*rate
		}
		return false
	}
	dev := rate - m.baseline
	if dev < 0 {
		dev = -dev
	}
	if dev > m.threshold()*m.baseline {
		// Shift detected: rebase so the trigger fires once per shift.
		m.baseline = rate
		m.samples = 0
		return true
	}
	a := m.alpha()
	m.baseline = (1-a)*m.baseline + a*rate
	return false
}

// Baseline returns the current smoothed throughput estimate.
func (m *Monitor) Baseline() float64 { return m.baseline }

// Reset clears the monitor (e.g. right after an explicit retune).
func (m *Monitor) Reset() {
	m.baseline = 0
	m.samples = 0
}
