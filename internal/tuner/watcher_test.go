package tuner

import (
	"testing"
	"time"

	"mutps/internal/obs"
)

// The watcher tests drive the rate channel with synthRate (see
// controller_test.go): the counter advances proportionally to wall time,
// so the observed rate equals the programmed rate no matter how far the
// scheduler stretches a sleep — no jitter-induced flakes on a loaded box.

// TestWatcherTriggerAndTrace drives the watcher with a synthetic counter:
// a steady rate through warmup, then a large step. The monitor must stay
// quiet during warmup, fire exactly once on the shift, and the trigger must
// land in the decision trace.
func TestWatcherTriggerAndTrace(t *testing.T) {
	rate := newSynthRate(500e3)
	trace := obs.NewDecisionTrace(16)
	w := NewWatcher(rate.read, trace)

	// Warmup windows at a steady rate: no triggers.
	for i := 0; i < 5; i++ {
		time.Sleep(2 * time.Millisecond)
		if _, trig := w.Tick(); trig {
			t.Fatalf("spurious trigger during steady load (window %d)", i)
		}
	}

	// Load collapses 100x: one trigger.
	rate.set(5e3)
	time.Sleep(2 * time.Millisecond)
	r, trig := w.Tick()
	if !trig {
		t.Fatalf("no trigger after load shift (rate %.0f, baseline %.0f)",
			r, w.Monitor.Baseline())
	}

	ds := trace.Snapshot()
	if len(ds) != 1 {
		t.Fatalf("trace has %d decisions, want 1", len(ds))
	}
	if ds[0].Event != "trigger" {
		t.Fatalf("decision event = %q, want trigger", ds[0].Event)
	}
	if ds[0].Rate != r {
		t.Fatalf("decision rate = %v, want %v", ds[0].Rate, r)
	}
	if ds[0].NewSplit != -1 || ds[0].NewCache != -1 {
		t.Fatalf("trigger decision should not carry config: %+v", ds[0])
	}
}

// TestWatcherRecordRetune checks the retune outcome lands in the trace and
// resets the feedback loop.
func TestWatcherRecordRetune(t *testing.T) {
	rate := newSynthRate(500e3)
	trace := obs.NewDecisionTrace(16)
	w := NewWatcher(rate.read, trace)

	for i := 0; i < 4; i++ {
		time.Sleep(time.Millisecond)
		w.Tick()
	}
	if w.Monitor.Baseline() == 0 {
		t.Fatal("baseline not established before retune")
	}

	res := Result{
		Best:   Config{CacheItems: 4096, MRThreads: 3},
		Score:  123456,
		Probes: 17,
	}
	w.RecordRetune(2, 1024, res)

	ds := trace.Snapshot()
	d := ds[len(ds)-1]
	if d.Event != "retune" {
		t.Fatalf("last decision = %q, want retune", d.Event)
	}
	if d.OldSplit != 2 || d.NewSplit != 3 || d.OldCache != 1024 || d.NewCache != 4096 {
		t.Fatalf("retune config not recorded: %+v", d)
	}
	if d.Score != 123456 || d.Probes != 17 {
		t.Fatalf("retune outcome not recorded: %+v", d)
	}
	if w.Monitor.Baseline() != 0 {
		t.Fatal("monitor not reset after retune")
	}
}

// TestWatcherNilTrace ensures a watcher without a trace still works.
func TestWatcherNilTrace(t *testing.T) {
	rate := newSynthRate(100e3)
	w := NewWatcher(rate.read, nil)
	for i := 0; i < 6; i++ {
		rate.set(100e3 * float64(i*i+1))
		time.Sleep(time.Millisecond)
		w.Tick()
	}
	w.RecordRetune(1, 0, Result{Best: Config{MRThreads: 1}})
}

// TestWatcherLatencyTriggerUsesExactMean is the trigger-math regression
// for the _sum-derived latency channel: a value shift that crosses a
// log₂ bucket boundary but moves the true mean by only 20% (below the
// 25% threshold) must NOT trigger — a quantile interpolated from the
// buckets would jump ~2x there and misfire — while a genuine 40% mean
// shift must trigger even though the throughput channel sees nothing.
func TestWatcherLatencyTriggerUsesExactMean(t *testing.T) {
	rate := newSynthRate(500e3) // constant: the rate channel stays quiet
	trace := obs.NewDecisionTrace(16)
	w := NewWatcher(rate.read, trace)
	h := obs.NewHistogram(1)
	w.WatchLatency(obs.NewHistogramMeanSampler(h))

	window := func(latency uint64, n int) (trig bool) {
		for i := 0; i < n; i++ {
			h.Record(0, latency)
		}
		time.Sleep(2 * time.Millisecond)
		_, trig = w.Tick()
		return trig
	}

	// Warm both monitors at 1000ns.
	for i := 0; i < 5; i++ {
		if window(1000, 100) {
			t.Fatalf("spurious trigger during warmup (window %d)", i)
		}
	}

	// 1000ns → 1200ns: crosses the [512,1024) → [1024,2048) bucket
	// boundary (an interpolated p50 roughly doubles) but the exact mean
	// moves +20% < 25%. Quantile-driven trigger math would fire here.
	if window(1200, 100) {
		t.Fatal("latency trigger fired on a 20% mean shift (quantile-style misfire)")
	}

	// A real 40%+ shift from the settled baseline must fire.
	fired := false
	for i := 0; i < 3 && !fired; i++ { // baseline EMA absorbed some of the 1200s
		fired = window(1700, 100)
	}
	if !fired {
		t.Fatal("latency trigger never fired on a 40%+ mean shift")
	}
	ds := trace.Snapshot()
	if len(ds) == 0 || ds[len(ds)-1].Event != "lat-trigger" {
		t.Fatalf("trace missing lat-trigger: %+v", ds)
	}

	// Empty latency windows (no requests) are skipped, not fed as zero.
	w.RecordRetune(1, 0, Result{Best: Config{MRThreads: 1}})
	for i := 0; i < 6; i++ {
		time.Sleep(time.Millisecond)
		if _, trig := w.Tick(); trig {
			t.Fatalf("trigger on an empty latency window (%d)", i)
		}
	}
}
