package tuner

import (
	"sync/atomic"
	"testing"
	"time"

	"mutps/internal/obs"
)

// TestWatcherTriggerAndTrace drives the watcher with a synthetic counter:
// a steady rate through warmup, then a large step. The monitor must stay
// quiet during warmup, fire exactly once on the shift, and the trigger must
// land in the decision trace.
func TestWatcherTriggerAndTrace(t *testing.T) {
	var ops atomic.Uint64
	trace := obs.NewDecisionTrace(16)
	w := NewWatcher(ops.Load, trace)

	advance := func(n uint64) {
		ops.Add(n)
		time.Sleep(2 * time.Millisecond) // non-zero window so Rate is finite
	}

	// Warmup windows at a steady rate: no triggers.
	for i := 0; i < 5; i++ {
		advance(1000)
		if _, trig := w.Tick(); trig {
			t.Fatalf("spurious trigger during steady load (window %d)", i)
		}
	}

	// Load collapses: one trigger.
	advance(10)
	rate, trig := w.Tick()
	if !trig {
		t.Fatalf("no trigger after load shift (rate %.0f, baseline %.0f)",
			rate, w.Monitor.Baseline())
	}

	ds := trace.Snapshot()
	if len(ds) != 1 {
		t.Fatalf("trace has %d decisions, want 1", len(ds))
	}
	if ds[0].Event != "trigger" {
		t.Fatalf("decision event = %q, want trigger", ds[0].Event)
	}
	if ds[0].Rate != rate {
		t.Fatalf("decision rate = %v, want %v", ds[0].Rate, rate)
	}
	if ds[0].NewSplit != -1 || ds[0].NewCache != -1 {
		t.Fatalf("trigger decision should not carry config: %+v", ds[0])
	}
}

// TestWatcherRecordRetune checks the retune outcome lands in the trace and
// resets the feedback loop.
func TestWatcherRecordRetune(t *testing.T) {
	var ops atomic.Uint64
	trace := obs.NewDecisionTrace(16)
	w := NewWatcher(ops.Load, trace)

	for i := 0; i < 4; i++ {
		ops.Add(500)
		time.Sleep(time.Millisecond)
		w.Tick()
	}
	if w.Monitor.Baseline() == 0 {
		t.Fatal("baseline not established before retune")
	}

	res := Result{
		Best:   Config{CacheItems: 4096, MRThreads: 3},
		Score:  123456,
		Probes: 17,
	}
	w.RecordRetune(2, 1024, res)

	ds := trace.Snapshot()
	d := ds[len(ds)-1]
	if d.Event != "retune" {
		t.Fatalf("last decision = %q, want retune", d.Event)
	}
	if d.OldSplit != 2 || d.NewSplit != 3 || d.OldCache != 1024 || d.NewCache != 4096 {
		t.Fatalf("retune config not recorded: %+v", d)
	}
	if d.Score != 123456 || d.Probes != 17 {
		t.Fatalf("retune outcome not recorded: %+v", d)
	}
	if w.Monitor.Baseline() != 0 {
		t.Fatal("monitor not reset after retune")
	}
}

// TestWatcherNilTrace ensures a watcher without a trace still works.
func TestWatcherNilTrace(t *testing.T) {
	var ops atomic.Uint64
	w := NewWatcher(ops.Load, nil)
	for i := 0; i < 6; i++ {
		ops.Add(100 * uint64(i*i+1))
		time.Sleep(time.Millisecond)
		w.Tick()
	}
	w.RecordRetune(1, 0, Result{Best: Config{MRThreads: 1}})
}
