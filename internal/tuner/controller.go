package tuner

import (
	"sync"
	"sync/atomic"
	"time"

	"mutps/internal/obs"
)

// System is a Reconfigurable that can also report and set its
// configuration without running a measurement window — what the online
// controller needs to read the pre-retune state and to apply (or revert
// to) a configuration after the search finishes.
type System interface {
	Reconfigurable
	// Current returns the configuration the system is serving with now.
	Current() Config
	// Apply installs a configuration without measuring.
	Apply(Config)
}

// ControllerConfig parameterizes the closed loop. Zero values select the
// documented defaults.
type ControllerConfig struct {
	// Interval is the sampling cadence (default 100ms). Each tick closes
	// one throughput window; the paper samples at 10ms, but over TCP with
	// pipelining a longer window keeps per-window noise below the trigger
	// threshold.
	Interval time.Duration
	// Cooldown is the minimum time between retunes (default 3s). Together
	// with MinGain it is the anti-oscillation guard: a trigger during
	// cooldown is suppressed (and traced), so a noisy boundary can fire at
	// most once per cooldown window.
	Cooldown time.Duration
	// MinGain is the minimum relative improvement over the incumbent
	// configuration required to keep the search's winner (default 0.05 =
	// 5%). Below it the controller reverts — a noisy probe window must not
	// move a well-tuned system.
	MinGain float64
	// Threshold overrides the trigger monitors' relative deviation
	// (default Monitor's 0.25).
	Threshold float64
	// Rate reads the monotonic completed-op counter (required).
	Rate func() uint64
	// LatFeed optionally supplies a (sum, count) latency feed — e.g. the
	// netserver's per-op histograms — enabling the mean-latency trigger.
	LatFeed func() (sum, count uint64)
	// Priors seeds and accumulates per-signature best-known configs
	// (optional).
	Priors *Priors
	// Signature classifies the current workload for the prior table
	// (required if Priors is set).
	Signature func() Signature
	// Trace receives trigger/suppress/retune/revert decisions (optional).
	Trace *obs.DecisionTrace
}

// Controller runs the paper's closed tuning loop against a live system:
// sample → trigger → search → apply → verify. Traffic keeps flowing
// throughout — Measure probes reconfigure the running system and read
// the op counter, they never pause it.
type Controller struct {
	sys     System
	cfg     ControllerConfig
	watcher *Watcher

	mu         sync.Mutex // serializes Tick/Retune (the loop is single-threaded; Stop/tests may race)
	lastRetune time.Time

	ticks    atomic.Uint64
	triggers atomic.Uint64
	retunes  atomic.Uint64
	reverts  atomic.Uint64

	stop chan struct{}
	done chan struct{}
}

// NewController builds the loop but does not start it; call Start for
// the background goroutine or Tick directly (tests, single-threaded
// harnesses).
func NewController(sys System, cfg ControllerConfig) *Controller {
	if cfg.Interval <= 0 {
		cfg.Interval = 100 * time.Millisecond
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 3 * time.Second
	}
	if cfg.MinGain <= 0 {
		cfg.MinGain = 0.05
	}
	w := NewWatcher(cfg.Rate, cfg.Trace)
	if cfg.Threshold > 0 {
		w.Monitor.Threshold = cfg.Threshold
	}
	if cfg.LatFeed != nil {
		w.WatchLatency(obs.NewMeanSampler(cfg.LatFeed))
		if cfg.Threshold > 0 {
			w.LatMonitor.Threshold = cfg.Threshold
		}
	}
	return &Controller{sys: sys, cfg: cfg, watcher: w}
}

// Watcher exposes the trigger plumbing (tests adjust monitor knobs
// through it).
func (c *Controller) Watcher() *Watcher { return c.watcher }

// Counters reports loop activity: windows sampled, triggers fired
// (including suppressed ones), searches run, and searches whose winner
// was rejected for insufficient gain.
func (c *Controller) Counters() (ticks, triggers, retunes, reverts uint64) {
	return c.ticks.Load(), c.triggers.Load(), c.retunes.Load(), c.reverts.Load()
}

// Start launches the background loop. Stop terminates it.
func (c *Controller) Start() {
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	go func() {
		defer close(c.done)
		t := time.NewTicker(c.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				c.Tick(time.Now())
			}
		}
	}()
}

// Stop halts the background loop and waits for an in-flight retune to
// finish.
func (c *Controller) Stop() {
	if c.stop == nil {
		return
	}
	close(c.stop)
	<-c.done
	c.stop = nil
}

// Tick runs one loop iteration at the given time: close the sampling
// window, and — on a trigger outside the cooldown — run a retune. It
// returns whether a retune ran, so harnesses can annotate their
// measurement stream.
func (c *Controller) Tick(now time.Time) (retuned bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ticks.Add(1)
	_, triggered := c.watcher.Tick()
	if !triggered {
		return false
	}
	c.triggers.Add(1)
	if !c.lastRetune.IsZero() && now.Sub(c.lastRetune) < c.cfg.Cooldown {
		// Hysteresis: the shift was real, but we retuned recently — let the
		// new baseline settle instead of chasing the transient. The monitor
		// already rebaselined at the shifted level, so a persistent shift
		// will re-fire after the cooldown.
		if c.cfg.Trace != nil {
			c.cfg.Trace.Record(obs.Decision{
				Event:    "suppress",
				OldSplit: -1, NewSplit: -1,
				OldCache: -1, NewCache: -1,
			})
		}
		return false
	}
	c.retune(now)
	return true
}

// Retune forces a search outside the trigger path (operator action,
// startup seeding). It honours MinGain but not the cooldown.
func (c *Controller) Retune() Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.retune(time.Now())
}

// retune runs the search and applies the winner — or reverts. Caller
// holds c.mu.
func (c *Controller) retune(now time.Time) Result {
	c.retunes.Add(1)
	old := c.sys.Current()

	// Baseline the incumbent under the *current* load, so the MinGain
	// comparison is apples-to-apples (the pre-shift throughput is stale).
	oldScore := c.sys.Measure(old)
	probes := 1

	best, bestScore := old, oldScore

	// Prior first: a single probe that usually lands near the optimum.
	var sig Signature
	haveSig := false
	if c.cfg.Priors != nil && c.cfg.Signature != nil {
		sig = c.cfg.Signature()
		haveSig = true
		if pr, ok := c.cfg.Priors.Lookup(sig); ok && pr.Config != old {
			if s := c.sys.Measure(pr.Config); s > bestScore {
				best, bestScore = pr.Config, s
			}
			probes++
		}
	}

	// Full hierarchical search (linear probe × trisection).
	res := Optimize(c.sys)
	probes += res.Probes
	if res.Score > bestScore {
		best, bestScore = res.Best, res.Score
	}

	// Minimum-improvement threshold: keep the winner only if it beats the
	// incumbent by MinGain; otherwise revert. This is what keeps a stable
	// workload's configuration pinned even though probe windows are noisy.
	reverted := false
	if best != old && oldScore > 0 && bestScore < oldScore*(1+c.cfg.MinGain) {
		best, bestScore = old, oldScore
		reverted = true
		c.reverts.Add(1)
	}
	c.sys.Apply(best)

	if haveSig {
		c.cfg.Priors.Update(sig, Prior{Config: best, Score: bestScore, Source: "online"})
	}

	out := Result{Best: best, Score: bestScore, Probes: probes}
	if reverted && c.cfg.Trace != nil {
		c.cfg.Trace.Record(obs.Decision{
			Event:    "revert",
			Rate:     bestScore,
			OldSplit: old.MRThreads, NewSplit: best.MRThreads,
			OldCache: old.CacheItems, NewCache: best.CacheItems,
			Score:  bestScore,
			Probes: probes,
		})
		// RecordRetune would log a second entry; still reset the feedback
		// loop so post-search windows start a fresh baseline.
		c.watcher.Monitor.Reset()
		c.watcher.Sampler.Reset()
		if c.watcher.LatMonitor != nil {
			c.watcher.LatMonitor.Reset()
		}
		if c.watcher.LatSampler != nil {
			c.watcher.LatSampler.Reset()
		}
	} else {
		c.watcher.RecordRetune(old.MRThreads, old.CacheItems, out)
	}
	c.lastRetune = now
	return out
}
