// Package tuner implements the μTPS auto-tuner (§3.5). It is generic over
// a Reconfigurable system so both the real store and the simulated KVS use
// the same search logic:
//
//   - thread reassignment and LLC-way allocation are searched with the
//     paper's trisecting approach, exploiting that throughput is unimodal
//     in each of those parameters;
//   - cache (hot-set) size is searched with a linear probe at a fixed step,
//     because cache resizing re-balances load between the layers and is not
//     strictly unimodal;
//   - the two are composed hierarchically: for each candidate cache size
//     the best thread split is found, then the best (cache size, split) is
//     kept, and finally the LLC-way allocation — which affects performance
//     orthogonally — is tuned independently.
package tuner

// Config is one point in the scheduling space the auto-tuner explores.
type Config struct {
	CacheItems int `json:"cache_items"` // hot items kept at the cache-resident layer
	MRThreads  int `json:"mr_threads"`  // worker threads assigned to the memory-resident layer
	MRWays     int `json:"mr_ways"`     // LLC ways the memory-resident layer may allocate into
}

// Reconfigurable is the system under tuning. Measure applies a
// configuration, runs one monitoring window, and returns the observed
// throughput; it must be safe to call repeatedly (the system keeps serving
// during tuning, per the paper's no-downtime requirement).
type Reconfigurable interface {
	Measure(Config) float64
	// Bounds describes the search space: the total worker threads to split
	// (MRThreads may be 1..Threads-1), the total LLC ways (MRWays may be
	// 0..Ways), the largest hot-set size to consider, and the linear-probe
	// step for cache sizing (the paper uses 1K items).
	Bounds() (threads, ways, maxCacheItems, cacheStep int)
}

// Result reports the chosen configuration and the search cost.
type Result struct {
	Best   Config
	Score  float64
	Probes int // Measure calls issued
}

// TrisectMax maximizes eval over the integers [lo, hi], assuming the
// function is unimodal (rises then falls), using the paper's trisecting
// refinement. It returns the argmax and the number of evaluations; repeated
// points are cached and counted once.
func TrisectMax(lo, hi int, eval func(int) float64) (best int, probes int) {
	if lo > hi {
		panic("tuner: empty trisection range")
	}
	cache := map[int]float64{}
	f := func(x int) float64 {
		if v, ok := cache[x]; ok {
			return v
		}
		v := eval(x)
		cache[x] = v
		probes++
		return v
	}
	for hi-lo > 2 {
		third := (hi - lo) / 3
		m1 := lo + third
		m2 := hi - third
		if m2 == m1 {
			m2++
		}
		if f(m1) < f(m2) {
			lo = m1 + 1
		} else {
			hi = m2 - 1
		}
	}
	best = lo
	for x := lo + 1; x <= hi; x++ {
		if f(x) > f(best) {
			best = x
		}
	}
	// Ensure best itself was evaluated (range may have collapsed).
	f(best)
	return best, probes
}

// LinearProbeMax evaluates every candidate and returns the argmax (first
// one on ties) along with the number of evaluations.
func LinearProbeMax(candidates []int, eval func(int) float64) (best int, probes int) {
	if len(candidates) == 0 {
		panic("tuner: no candidates")
	}
	best = candidates[0]
	bestV := eval(best)
	probes = 1
	for _, c := range candidates[1:] {
		v := eval(c)
		probes++
		if v > bestV {
			best, bestV = c, v
		}
	}
	return best, probes
}

// Optimize runs the full hierarchical search and leaves the system
// configured at the best point found.
func Optimize(sys Reconfigurable) Result {
	threads, ways, maxCache, step := sys.Bounds()
	if threads < 2 {
		// With fewer than two workers there is nothing to split; measure
		// the only possible configuration.
		cfg := Config{CacheItems: 0, MRThreads: threads, MRWays: ways}
		return Result{Best: cfg, Score: sys.Measure(cfg), Probes: 1}
	}
	if step <= 0 {
		step = 1000
	}

	var res Result

	// Hierarchical: linear probe over cache sizes; trisect the thread
	// split inside each.
	var cacheSizes []int
	for k := 0; k <= maxCache; k += step {
		cacheSizes = append(cacheSizes, k)
	}
	bestScore := -1.0
	for _, k := range cacheSizes {
		k := k
		bestMR, probes := TrisectMax(1, threads-1, func(mr int) float64 {
			return sys.Measure(Config{CacheItems: k, MRThreads: mr, MRWays: ways})
		})
		res.Probes += probes
		score := sys.Measure(Config{CacheItems: k, MRThreads: bestMR, MRWays: ways})
		res.Probes++
		if score > bestScore {
			bestScore = score
			res.Best = Config{CacheItems: k, MRThreads: bestMR, MRWays: ways}
		}
	}

	// LLC-way allocation, tuned independently (orthogonal effect).
	bestWays, probes := TrisectMax(0, ways, func(w int) float64 {
		c := res.Best
		c.MRWays = w
		return sys.Measure(c)
	})
	res.Probes += probes
	res.Best.MRWays = bestWays

	res.Score = sys.Measure(res.Best)
	res.Probes++
	return res
}

// OptimizeExhaustive searches the same space without trisection — the
// ablation baseline demonstrating the probe-count savings of the paper's
// search (it must find a configuration at least as good, at higher cost).
func OptimizeExhaustive(sys Reconfigurable) Result {
	threads, ways, maxCache, step := sys.Bounds()
	if step <= 0 {
		step = 1000
	}
	var res Result
	bestScore := -1.0
	for k := 0; k <= maxCache; k += step {
		for mr := 1; mr <= threads-1 || (threads < 2 && mr == 1); mr++ {
			score := sys.Measure(Config{CacheItems: k, MRThreads: mr, MRWays: ways})
			res.Probes++
			if score > bestScore {
				bestScore = score
				res.Best = Config{CacheItems: k, MRThreads: mr, MRWays: ways}
			}
			if threads < 2 {
				break
			}
		}
	}
	for w := 0; w <= ways; w++ {
		c := res.Best
		c.MRWays = w
		score := sys.Measure(c)
		res.Probes++
		if score > bestScore {
			bestScore = score
			res.Best = c
		}
	}
	res.Score = sys.Measure(res.Best)
	res.Probes++
	return res
}
