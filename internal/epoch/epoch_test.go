package epoch

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestSynchronizeWithQuiescentReaders(t *testing.T) {
	d := NewDomain(4)
	if d.Readers() != 4 {
		t.Fatalf("Readers = %d", d.Readers())
	}
	before := d.Epoch()
	d.Synchronize() // no reader active: must not block
	if d.Epoch() != before+1 {
		t.Fatalf("epoch = %d, want %d", d.Epoch(), before+1)
	}
}

func TestSynchronizeWaitsForActiveReader(t *testing.T) {
	d := NewDomain(1)
	d.Enter(0)
	done := make(chan struct{})
	var finished atomic.Bool
	go func() {
		d.Synchronize()
		finished.Store(true)
		close(done)
	}()
	// The synchronizer must not finish while the reader is in the old
	// epoch. Give it generous opportunity to (incorrectly) complete.
	for i := 0; i < 1000; i++ {
		if finished.Load() {
			t.Fatal("Synchronize returned while a reader held the old epoch")
		}
	}
	d.Exit(0)
	<-done
}

func TestReaderInNewEpochDoesNotBlock(t *testing.T) {
	d := NewDomain(2)
	// Reader 0 enters, the writer synchronizes once (reader exits), then
	// reader 0 re-enters in the *new* epoch: a second synchronize must not
	// wait on it... it must, actually — Enter pins the then-current epoch.
	// What must NOT block is a reader that entered after the advance.
	d.Enter(0)
	d.Exit(0)
	d.Synchronize()
	d.Enter(1) // enters epoch 1 (records 2)
	ch := make(chan struct{})
	go func() {
		d.Synchronize() // advances to 2; reader recorded 2 > 2? No: 2 == e.
		close(ch)
	}()
	// Reader 1 entered before this advance, so the writer must wait.
	var blocked atomic.Bool
	select {
	case <-ch:
		t.Fatal("Synchronize must wait for reader that entered earlier epoch")
	default:
		blocked.Store(true)
	}
	d.Exit(1)
	<-ch
	if !blocked.Load() {
		t.Fatal("unreachable")
	}
}

func TestFrontierQuiescent(t *testing.T) {
	d := NewDomain(3)
	if f := d.Frontier(); f != 0 {
		t.Fatalf("Frontier = %d with no activity", f)
	}
	d.Advance()
	d.Advance()
	// All readers quiescent: the frontier is the global epoch itself.
	if f := d.Frontier(); f != 2 {
		t.Fatalf("Frontier = %d, want 2", f)
	}
}

func TestFrontierPinnedByReader(t *testing.T) {
	d := NewDomain(2)
	d.Advance() // epoch 1
	d.Enter(0)  // reader 0 pins epoch 1
	d.Advance() // epoch 2
	d.Advance() // epoch 3
	if f := d.Frontier(); f != 1 {
		t.Fatalf("Frontier = %d while reader pins epoch 1", f)
	}
	// An object retired at epoch 1 (e = Epoch() read as 1, 2, or 3 — any
	// value ≥ the pin) must not be freeable while the reader is active.
	if d.Frontier() > 1 {
		t.Fatal("frontier overtook an active reader")
	}
	d.Exit(0)
	if f := d.Frontier(); f != 3 {
		t.Fatalf("Frontier = %d after reader exit, want 3", f)
	}
	// Re-entry pins the *current* epoch, not the old one.
	d.Enter(1)
	if f := d.Frontier(); f != 3 {
		t.Fatalf("Frontier = %d with reader in current epoch, want 3", f)
	}
	d.Exit(1)
}

// TestAdvanceFrontierReclamation drives the asynchronous retire protocol
// the store uses: writers unlink objects, stamp the retire epoch, and
// poison them only once Frontier passes it; readers assert they never see
// a poisoned object. Run under -race in CI.
func TestAdvanceFrontierReclamation(t *testing.T) {
	const readers = 3
	d := NewDomain(readers)
	var ptr atomic.Pointer[int]
	v0 := 0
	ptr.Store(&v0)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				d.Enter(r)
				if p := ptr.Load(); *p < 0 {
					panic("read a reclaimed value")
				}
				d.Exit(r)
			}
		}(r)
	}
	type retired struct {
		p *int
		e uint64
	}
	var q []retired
	freed := 0
	for i := 1; freed < 300; i++ {
		v := i
		old := ptr.Swap(&v)
		q = append(q, retired{old, d.Epoch()}) // stamp after unlink
		d.Advance()
		f := d.Frontier()
		for len(q) > 0 && f > q[0].e {
			*q[0].p = -1 // poison: any later read panics
			q = q[1:]
			freed++
		}
	}
	close(stop)
	wg.Wait()
}

func TestConcurrentReadersAndSynchronizers(t *testing.T) {
	const readers = 4
	d := NewDomain(readers)
	// Shared pointer protected by the epoch protocol.
	var ptr atomic.Pointer[int]
	v0 := 0
	ptr.Store(&v0)
	var retired atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				d.Enter(r)
				p := ptr.Load()
				if *p < 0 {
					panic("read a retired value")
				}
				d.Exit(r)
			}
		}(r)
	}
	for i := 1; i <= 200; i++ {
		v := i
		old := ptr.Swap(&v)
		d.Synchronize()
		// After synchronize no reader can still dereference old; poison it.
		*old = -1
		retired.Add(1)
	}
	close(stop)
	wg.Wait()
	if retired.Load() != 200 {
		t.Fatalf("retired %d", retired.Load())
	}
}
