// Package epoch provides a small epoch-based publication domain, the
// mechanism μTPS uses (following Nap) to switch the cache-resident layer's
// hot set atomically with respect to all worker threads: a writer installs
// a new structure pointer, advances the epoch, and waits until every
// registered reader has either gone quiescent or entered the new epoch,
// after which the old structure can no longer be observed.
package epoch

import (
	"runtime"
	"sync/atomic"
)

// pad keeps each reader slot on its own cache line to avoid false sharing
// between spin-polling workers.
type slot struct {
	state atomic.Uint64 // 0 = quiescent; otherwise epoch+1 at Enter time
	_     [7]uint64
}

// Domain tracks a fixed set of readers identified by dense indexes.
type Domain struct {
	global atomic.Uint64
	slots  []slot
}

// NewDomain creates a domain for readers [0, n).
func NewDomain(n int) *Domain {
	return &Domain{slots: make([]slot, n)}
}

// Readers returns the number of reader slots.
func (d *Domain) Readers() int { return len(d.slots) }

// Epoch returns the current global epoch.
func (d *Domain) Epoch() uint64 { return d.global.Load() }

// Enter marks reader r active in the current epoch. Calls must be paired
// with Exit and must not nest.
func (d *Domain) Enter(r int) {
	d.slots[r].state.Store(d.global.Load() + 1)
}

// Exit marks reader r quiescent.
func (d *Domain) Exit(r int) {
	d.slots[r].state.Store(0)
}

// Synchronize advances the global epoch and blocks until every reader is
// quiescent or has entered the new epoch. On return, no reader can still
// observe state published before the corresponding pointer swap.
func (d *Domain) Synchronize() {
	e := d.global.Add(1)
	for i := range d.slots {
		for {
			s := d.slots[i].state.Load()
			if s == 0 || s > e {
				break
			}
			runtime.Gosched()
		}
	}
}
