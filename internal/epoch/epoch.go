// Package epoch provides a small epoch-based publication domain, the
// mechanism μTPS uses (following Nap) to switch the cache-resident layer's
// hot set atomically with respect to all worker threads: a writer installs
// a new structure pointer, advances the epoch, and waits until every
// registered reader has either gone quiescent or entered the new epoch,
// after which the old structure can no longer be observed.
package epoch

import (
	"runtime"
	"sync/atomic"
)

// pad keeps each reader slot on its own cache line to avoid false sharing
// between spin-polling workers.
type slot struct {
	state atomic.Uint64 // 0 = quiescent; otherwise epoch+1 at Enter time
	_     [7]uint64
}

// Domain tracks a fixed set of readers identified by dense indexes.
type Domain struct {
	global atomic.Uint64
	slots  []slot
}

// NewDomain creates a domain for readers [0, n).
func NewDomain(n int) *Domain {
	return &Domain{slots: make([]slot, n)}
}

// Readers returns the number of reader slots.
func (d *Domain) Readers() int { return len(d.slots) }

// Epoch returns the current global epoch.
func (d *Domain) Epoch() uint64 { return d.global.Load() }

// Enter marks reader r active in the current epoch. Calls must be paired
// with Exit and must not nest.
func (d *Domain) Enter(r int) {
	d.slots[r].state.Store(d.global.Load() + 1)
}

// Exit marks reader r quiescent.
func (d *Domain) Exit(r int) {
	d.slots[r].state.Store(0)
}

// Synchronize advances the global epoch and blocks until every reader is
// quiescent or has entered the new epoch. On return, no reader can still
// observe state published before the corresponding pointer swap.
func (d *Domain) Synchronize() {
	e := d.global.Add(1)
	for i := range d.slots {
		for {
			s := d.slots[i].state.Load()
			if s == 0 || s > e {
				break
			}
			runtime.Gosched()
		}
	}
}

// Advance bumps the global epoch without waiting. It is the non-blocking
// half of the asynchronous reclamation protocol: reclaimers Advance, then
// free retired objects once Frontier moves past their retirement epoch.
// Any number of goroutines may Advance concurrently.
func (d *Domain) Advance() { d.global.Add(1) }

// Frontier returns the oldest epoch any currently active reader may have
// entered in (the global epoch when every reader is quiescent). An object
// made unreachable-to-new-readers at epoch e — retired after it was
// unlinked from every shared structure, stamping e = Epoch() — is safe to
// reuse once Frontier() > e: every read-section that could have acquired a
// reference began at an epoch ≤ e and has since exited.
//
// Frontier is monotonically non-decreasing only as long as readers keep
// making progress; a reader parked inside a read-section pins it. It never
// overtakes an active reader, so it can under-report (block reclamation
// longer than necessary) but never over-report.
func (d *Domain) Frontier() uint64 {
	f := d.global.Load()
	for i := range d.slots {
		s := d.slots[i].state.Load()
		if s != 0 && s-1 < f {
			f = s - 1
		}
	}
	return f
}
