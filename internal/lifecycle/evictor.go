// Package lifecycle implements the memory-budget half of the store's
// bounded-memory lifecycle: a background evictor that fires when live
// arena bytes cross a configurable budget, ranks victims by coldness
// using the store's hot-set sketch (expired items first, then the lowest
// CMS estimates), and retires them through the store's epoch-reclamation
// path — spilling values to the cold tier when one is attached.
//
// The evictor is deliberately not a worker: it runs on its own goroutine
// with its own epoch reader slot and retirement queue, so reclaiming
// memory never competes with request traffic for ring slots and never
// pollutes the hot-set tracker with its own scans.
package lifecycle

import (
	"sort"
	"sync"
	"time"

	"mutps/internal/obs"
)

// Store is the surface the evictor drives. It is implemented by
// kvcore.Store; the indirection keeps this package mechanism-only
// (ranking and pacing) with no knowledge of indexes or items.
type Store interface {
	// BudgetedBytes returns the live arena bytes that will remain once
	// everything already retired has been reclaimed — the signal the
	// budget is enforced against. (Raw live bytes would double-count
	// items the evictor has unlinked but grace periods still pin.)
	BudgetedBytes() uint64
	// WalkItems visits live items: key, arena slot bytes, hot-set sketch
	// estimate, and whether the item has passed its TTL deadline. Return
	// false to stop early.
	WalkItems(f func(key uint64, bytes int, hot uint32, expired bool) bool)
	// EvictKey unlinks key, spilling its value to the cold tier when one
	// is configured (expired items are dropped), and returns the arena
	// bytes the eviction will free.
	EvictKey(key uint64) (freed uint64, ok bool)
	// EvictorMaintain advances the epoch and drains the evictor's
	// retirement queue and deferred-spill fixups as far as the grace
	// period allows. Called only from the evictor goroutine.
	EvictorMaintain()
}

// Config bounds the evictor. Zero values select defaults.
type Config struct {
	Budget     uint64        // required: high watermark on live arena bytes
	LowWater   float64       // evict down to LowWater×Budget (default 0.9)
	Interval   time.Duration // poll period (default 5ms)
	MaxVictims int           // victims ranked per pass (default 1024)
}

func (c *Config) defaults() {
	if c.LowWater <= 0 || c.LowWater > 1 {
		c.LowWater = 0.9
	}
	if c.Interval <= 0 {
		c.Interval = 5 * time.Millisecond
	}
	if c.MaxVictims <= 0 {
		c.MaxVictims = 1024
	}
}

// Evictor owns the eviction loop.
type Evictor struct {
	cfg    Config
	st     Store
	notify chan struct{}
	stop   chan struct{}
	wg     sync.WaitGroup

	heap victimHeap

	passes  *obs.Counter
	evicted *obs.Counter
	freed   *obs.Counter
}

// New creates an evictor enforcing cfg against st. Metrics register with
// reg when it is non-nil.
func New(cfg Config, st Store, reg *obs.Registry) *Evictor {
	cfg.defaults()
	e := &Evictor{
		cfg:     cfg,
		st:      st,
		notify:  make(chan struct{}, 1),
		stop:    make(chan struct{}),
		passes:  obs.NewCounter(1),
		evicted: obs.NewCounter(1),
		freed:   obs.NewCounter(1),
	}
	e.heap.cap = cfg.MaxVictims
	if reg != nil && !obs.Disabled {
		reg.GaugeFunc("mutps_memory_budget_bytes", "", "Configured memory budget (high watermark on live arena bytes).",
			func() float64 { return float64(cfg.Budget) })
		reg.CounterFunc("mutps_evict_passes_total", "", "Eviction passes that found the budget exceeded.",
			func() float64 { return float64(e.passes.Value()) })
		reg.CounterFunc("mutps_evictions_total", "", "Items evicted by the budget loop.",
			func() float64 { return float64(e.evicted.Value()) })
		reg.CounterFunc("mutps_evict_freed_bytes_total", "", "Arena bytes released by budget evictions.",
			func() float64 { return float64(e.freed.Value()) })
	}
	return e
}

// Start launches the eviction goroutine.
func (e *Evictor) Start() {
	e.wg.Add(1)
	go e.loop()
}

// Close stops the loop and waits for it. The store's retirement queues
// are drained by the store's own Close, not here.
func (e *Evictor) Close() {
	close(e.stop)
	e.wg.Wait()
}

// Notify kicks the loop without waiting for the next tick; it never
// blocks and coalesces with a pending kick. The arena's pressure hook
// calls it from allocation slow paths.
func (e *Evictor) Notify() {
	select {
	case e.notify <- struct{}{}:
	default:
	}
}

func (e *Evictor) loop() {
	defer e.wg.Done()
	t := time.NewTicker(e.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-e.stop:
			return
		case <-t.C:
		case <-e.notify:
		}
		e.Pass()
	}
}

// Pass runs one synchronous eviction pass and reports how many items it
// evicted and the bytes that will be freed. Exposed for tests; the loop
// calls it on every tick or pressure notification.
func (e *Evictor) Pass() (evictions int, freed uint64) {
	e.st.EvictorMaintain()
	live := e.st.BudgetedBytes()
	if live <= e.cfg.Budget {
		return 0, 0
	}
	e.passes.Inc(0)
	target := uint64(float64(e.cfg.Budget) * e.cfg.LowWater)
	need := live - target

	h := &e.heap
	h.reset()
	e.st.WalkItems(func(key uint64, bytes int, hot uint32, expired bool) bool {
		h.offer(victim{key: key, bytes: bytes, rank: rankOf(hot, expired)})
		return true
	})
	victims := h.ranked()

	for _, v := range victims {
		if freed >= need {
			break
		}
		if f, ok := e.st.EvictKey(v.key); ok {
			freed += f
			evictions++
		}
	}
	e.evicted.Add(0, uint64(evictions))
	e.freed.Add(0, freed)
	// Push what was just retired toward reclamation so the next pass sees
	// an honest byte count.
	e.st.EvictorMaintain()
	return evictions, freed
}

// rankOf orders candidates: expired items rank below any live one, then
// coldness ascending by sketch estimate.
func rankOf(hot uint32, expired bool) int64 {
	if expired {
		return -1
	}
	return int64(hot)
}

type victim struct {
	key   uint64
	bytes int
	rank  int64
}

// worse reports whether a is a worse eviction candidate than b: hotter,
// or equally hot but freeing fewer bytes.
func worse(a, b victim) bool {
	if a.rank != b.rank {
		return a.rank > b.rank
	}
	return a.bytes < b.bytes
}

// victimHeap keeps the cap best (coldest) candidates seen so far, as a
// max-heap whose root is the worst candidate currently kept — one full
// index walk yields the globally coldest cap items in O(n log cap).
type victimHeap struct {
	v   []victim
	cap int
}

func (h *victimHeap) reset() { h.v = h.v[:0] }

func (h *victimHeap) offer(c victim) {
	if len(h.v) < h.cap {
		h.v = append(h.v, c)
		// sift up
		i := len(h.v) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !worse(h.v[i], h.v[p]) {
				break
			}
			h.v[i], h.v[p] = h.v[p], h.v[i]
			i = p
		}
		return
	}
	if !worse(h.v[0], c) {
		return // the new candidate is no better than the worst kept
	}
	h.v[0] = c
	// sift down
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		w := i
		if l < len(h.v) && worse(h.v[l], h.v[w]) {
			w = l
		}
		if r < len(h.v) && worse(h.v[r], h.v[w]) {
			w = r
		}
		if w == i {
			return
		}
		h.v[i], h.v[w] = h.v[w], h.v[i]
		i = w
	}
}

// ranked returns the kept candidates ordered best-first (coldest, and
// largest within a rank). The slice is valid until the next reset.
func (h *victimHeap) ranked() []victim {
	sort.Slice(h.v, func(i, j int) bool { return worse(h.v[j], h.v[i]) })
	return h.v
}
