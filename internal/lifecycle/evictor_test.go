package lifecycle

import (
	"sync"
	"testing"
	"time"
)

func TestVictimHeapKeepsColdest(t *testing.T) {
	h := victimHeap{cap: 3}
	for i := 0; i < 100; i++ {
		h.offer(victim{key: uint64(i), bytes: 64, rank: int64(i)})
	}
	got := h.ranked()
	if len(got) != 3 {
		t.Fatalf("kept %d, want 3", len(got))
	}
	for i, v := range got {
		if v.rank != int64(i) {
			t.Fatalf("ranked[%d].rank = %d, want %d", i, v.rank, i)
		}
	}
}

func TestVictimHeapExpiredFirst(t *testing.T) {
	h := victimHeap{cap: 4}
	h.offer(victim{key: 1, bytes: 64, rank: rankOf(5, false)})
	h.offer(victim{key: 2, bytes: 64, rank: rankOf(1000, true)}) // expired: hotness irrelevant
	h.offer(victim{key: 3, bytes: 64, rank: rankOf(0, false)})
	h.offer(victim{key: 4, bytes: 256, rank: rankOf(0, false)}) // ties break to bigger items
	got := h.ranked()
	if got[0].key != 2 {
		t.Fatalf("ranked[0].key = %d, want expired key 2", got[0].key)
	}
	if got[1].key != 4 || got[2].key != 3 {
		t.Fatalf("rank-0 tie order = %d,%d, want 4,3", got[1].key, got[2].key)
	}
}

// fakeStore enforces the budget against a simple in-memory population.
type fakeStore struct {
	mu       sync.Mutex
	items    map[uint64]victim // rank reused as hotness
	expired  map[uint64]bool
	live     uint64
	maintain int
}

func (f *fakeStore) BudgetedBytes() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.live
}

func (f *fakeStore) WalkItems(fn func(uint64, int, uint32, bool) bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for k, v := range f.items {
		if !fn(k, v.bytes, uint32(v.rank), f.expired[k]) {
			return
		}
	}
}

func (f *fakeStore) EvictKey(key uint64) (uint64, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	v, ok := f.items[key]
	if !ok {
		return 0, false
	}
	delete(f.items, key)
	f.live -= uint64(v.bytes)
	return uint64(v.bytes), true
}

func (f *fakeStore) EvictorMaintain() {
	f.mu.Lock()
	f.maintain++
	f.mu.Unlock()
}

func newFake(n int, bytes int) *fakeStore {
	f := &fakeStore{items: map[uint64]victim{}, expired: map[uint64]bool{}}
	for i := 0; i < n; i++ {
		f.items[uint64(i)] = victim{key: uint64(i), bytes: bytes, rank: int64(i)}
		f.live += uint64(bytes)
	}
	return f
}

func TestPassEnforcesBudget(t *testing.T) {
	f := newFake(100, 64) // 6400 live bytes
	e := New(Config{Budget: 3200, LowWater: 0.5}, f, nil)
	n, freed := e.Pass()
	if n == 0 || freed == 0 {
		t.Fatal("pass evicted nothing")
	}
	if got := f.BudgetedBytes(); got > 3200 {
		t.Fatalf("live %d still above budget", got)
	}
	// Down to the low-water mark, not just under budget.
	if got := f.BudgetedBytes(); got > 1600 {
		t.Fatalf("live %d above low water 1600", got)
	}
	// Coldest (lowest rank) keys went first: key 99 (hottest) must survive.
	f.mu.Lock()
	_, hotSurvives := f.items[99]
	_, coldSurvives := f.items[0]
	f.mu.Unlock()
	if !hotSurvives {
		t.Fatal("hottest key evicted")
	}
	if coldSurvives {
		t.Fatal("coldest key survived a full pass")
	}
}

func TestPassUnderBudgetIsIdle(t *testing.T) {
	f := newFake(10, 64)
	e := New(Config{Budget: 1 << 20}, f, nil)
	if n, _ := e.Pass(); n != 0 {
		t.Fatalf("evicted %d items under budget", n)
	}
}

func TestExpiredEvictedBeforeCold(t *testing.T) {
	f := newFake(10, 64) // 640 bytes, ranks 0..9
	f.expired[9] = true  // hottest item, but expired
	e := New(Config{Budget: 600, LowWater: 0.94}, f, nil)
	n, _ := e.Pass() // needs to free ~76 bytes → two evictions
	if n != 2 {
		t.Fatalf("evicted %d, want 2", n)
	}
	f.mu.Lock()
	_, expiredStill := f.items[9]
	_, coldestStill := f.items[0]
	f.mu.Unlock()
	if expiredStill {
		t.Fatal("expired item not chosen first")
	}
	if coldestStill {
		t.Fatal("coldest live item not chosen second")
	}
}

func TestLoopReactsToNotify(t *testing.T) {
	f := newFake(100, 64)
	e := New(Config{Budget: 3200, Interval: time.Hour}, f, nil) // ticker won't fire
	e.Start()
	defer e.Close()
	e.Notify()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if f.BudgetedBytes() <= 3200 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("notify did not trigger a pass")
}
