package benchfmt

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAppendReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	recs := []Record{
		{
			Schema: SchemaV1, Bench: "BenchmarkX",
			Config: map[string]any{"workers": 4.0},
			Ops:    1000, OpsPerSec: 5e5, P50Ns: 900, P99Ns: 4000,
			Extra: map[string]any{"heap_inuse": 1024.0},
		},
		{
			Schema: SchemaV1, Bench: "scenario", Scenario: "size-shift",
			Phase: "post-shift", Window: 3, Ops: 50, OpsPerSec: 100,
		},
	}
	for _, r := range recs {
		if err := Append(path, r); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	if got[0].Config["workers"] != 4.0 || got[0].Extra["heap_inuse"] != 1024.0 {
		t.Fatalf("config/extra lost: %+v", got[0])
	}
	if got[1].Scenario != "size-shift" || got[1].Window != 3 {
		t.Fatalf("scenario fields lost: %+v", got[1])
	}
}

func TestAppendStampsSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := Append(path, Record{Bench: "x", Ops: 1, OpsPerSec: 1}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Schema != SchemaV1 {
		t.Fatalf("schema = %q", got[0].Schema)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		rec  Record
		want string
	}{
		{"wrong-schema", Record{Schema: "v0", Bench: "x"}, "schema"},
		{"no-bench", Record{Schema: SchemaV1}, "bench"},
		{"neg-rate", Record{Schema: SchemaV1, Bench: "x", OpsPerSec: -1}, "ops_per_sec"},
		{"orphan-phase", Record{Schema: SchemaV1, Bench: "x", Phase: "p"}, "scenario"},
	}
	for _, c := range cases {
		err := c.rec.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}
}

func TestReadFileRejectsBadLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	good := `{"schema":"mutps-bench/v1","bench":"x","ops":1,"ops_per_sec":1}`
	bad := `{"schema":"nope","bench":"x","ops":1,"ops_per_sec":1}`
	if err := os.WriteFile(path, []byte(good+"\n"+bad+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil || !strings.Contains(err.Error(), ":2:") {
		t.Fatalf("err = %v, want line-2 schema error", err)
	}
}
