// Package benchfmt defines the normalized JSON-lines record every bench
// artifact in this repo emits (BENCH_net.json, BENCH_cluster.json,
// BENCH_capacity.json, BENCH_scenarios.json). One schema means one
// plotting script: every record carries the same core measurement fields
// at the top level, with emitter-specific knobs under "config" and
// emitter-specific observations under "extra".
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
)

// SchemaV1 is the schema tag stamped on every record.
const SchemaV1 = "mutps-bench/v1"

// Record is one measurement: a whole benchmark run, or one window of one
// phase of a dynamic scenario.
type Record struct {
	Schema string `json:"schema"`
	Bench  string `json:"bench"` // emitter name, e.g. "BenchmarkSparseConns"

	// Scenario position, set only by scenario runs.
	Scenario string `json:"scenario,omitempty"`
	Phase    string `json:"phase,omitempty"`
	Window   int    `json:"window,omitempty"` // 1-based window index within the phase

	// Config holds the knob values that produced this measurement
	// (workers, conns, batch size, tuner configuration, ...).
	Config map[string]any `json:"config,omitempty"`

	Ops       uint64  `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50Ns     float64 `json:"p50_ns,omitempty"`
	P99Ns     float64 `json:"p99_ns,omitempty"`

	// Extra holds emitter-specific observations (heap bytes, frames,
	// eviction counts, tuner counters, ...).
	Extra map[string]any `json:"extra,omitempty"`

	UnixNanos int64 `json:"unix_nanos,omitempty"`
}

// New returns a record stamped with the schema tag.
func New(bench string) Record {
	return Record{Schema: SchemaV1, Bench: bench}
}

// Validate checks the invariants every consumer may rely on.
func (r *Record) Validate() error {
	if r.Schema != SchemaV1 {
		return fmt.Errorf("benchfmt: schema %q, want %q", r.Schema, SchemaV1)
	}
	if r.Bench == "" {
		return fmt.Errorf("benchfmt: empty bench name")
	}
	if r.OpsPerSec < 0 {
		return fmt.Errorf("benchfmt: negative ops_per_sec %v", r.OpsPerSec)
	}
	if r.Window < 0 {
		return fmt.Errorf("benchfmt: negative window %d", r.Window)
	}
	if r.Phase != "" && r.Scenario == "" {
		return fmt.Errorf("benchfmt: phase %q without a scenario", r.Phase)
	}
	return nil
}

// Append validates rec and writes it as one JSON line to path, creating
// the file if needed. Repeated runs accumulate into a comparable series.
func Append(path string, rec Record) error {
	if rec.Schema == "" {
		rec.Schema = SchemaV1
	}
	if err := rec.Validate(); err != nil {
		return err
	}
	buf, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(append(buf, '\n'))
	return err
}

// ReadFile parses a JSON-lines artifact, validating every record. Blank
// lines are skipped; any malformed or schema-violating line is an error
// naming its line number.
func ReadFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(b, &rec); err != nil {
			return nil, fmt.Errorf("benchfmt: %s:%d: %v", path, line, err)
		}
		if err := rec.Validate(); err != nil {
			return nil, fmt.Errorf("%s:%d: %v", path, line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
