module mutps

go 1.22
