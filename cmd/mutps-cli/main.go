// Command mutps-cli is an interactive client for mutps-server.
//
// Usage:
//
//	mutps-cli -addr localhost:7070
//	> put 42 hello
//	> get 42
//	> scan 0 10
//	> del 42
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"mutps/internal/netserver"
)

// putTTL is the -ttl flag: a TTL stamped on every put issued by this
// session (0 leaves expiry to the server's default).
var putTTL time.Duration

func main() {
	addr := flag.String("addr", "localhost:7070", "server address")
	flag.DurationVar(&putTTL, "ttl", 0,
		"TTL stamped on every put, e.g. 30s (0 = server default / never)")
	flag.Parse()

	cli, err := netserver.Dial(*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()
	fmt.Printf("connected to %s; commands: get K | put K V | del K | scan K N | stats | quit\n", *addr)

	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" {
			if done := run(cli, line); done {
				return
			}
		}
		fmt.Print("> ")
	}
}

func run(cli *netserver.Client, line string) (quit bool) {
	fields := strings.Fields(line)
	cmd := strings.ToLower(fields[0])
	key := func(i int) (uint64, bool) {
		if len(fields) <= i {
			fmt.Println("missing key")
			return 0, false
		}
		k, err := strconv.ParseUint(fields[i], 10, 64)
		if err != nil {
			fmt.Println("bad key:", err)
			return 0, false
		}
		return k, true
	}
	switch cmd {
	case "quit", "exit":
		return true
	case "get":
		if k, ok := key(1); ok {
			v, ttl, found, err := cli.GetTTL(k)
			if err != nil {
				// A pre-TTL server rejects the op; degrade to a plain get.
				v, found, err = cli.Get(k)
			}
			report(err, func() {
				switch {
				case found && ttl > 0:
					fmt.Printf("%q (ttl %v remaining)\n", v, ttl.Round(time.Millisecond))
				case found:
					fmt.Printf("%q\n", v)
				default:
					fmt.Println("(not found)")
				}
			})
		}
	case "put":
		if k, ok := key(1); ok {
			if len(fields) < 3 {
				fmt.Println("missing value")
				return
			}
			val := strings.Join(fields[2:], " ")
			err := cli.PutTTL(k, []byte(val), putTTL)
			if err != nil && putTTL <= 0 {
				// A pre-TTL server rejects the op; with no TTL requested the
				// plain put is equivalent.
				err = cli.Put(k, []byte(val))
			}
			report(err, func() { fmt.Println("ok") })
		}
	case "del":
		if k, ok := key(1); ok {
			found, err := cli.Delete(k)
			report(err, func() { fmt.Println(map[bool]string{true: "deleted", false: "(not found)"}[found]) })
		}
	case "stats":
		// StatsMap speaks the versioned stats op and degrades to the five
		// legacy counters against an old server.
		m, err := cli.StatsMap()
		report(err, func() {
			names := make([]string, 0, len(m))
			for n := range m {
				names = append(names, n)
			}
			sort.Strings(names)
			for _, n := range names {
				fmt.Printf("%-48s %g\n", n, m[n])
			}
		})
	case "scan":
		if k, ok := key(1); ok {
			n := 10
			if len(fields) > 2 {
				if v, err := strconv.Atoi(fields[2]); err == nil {
					n = v
				}
			}
			kvs, err := cli.Scan(k, n)
			report(err, func() {
				for _, kv := range kvs {
					fmt.Printf("%d: %q\n", kv.Key, kv.Value)
				}
				fmt.Printf("(%d entries)\n", len(kvs))
			})
		}
	default:
		fmt.Println("commands: get K | put K V | del K | scan K N | stats | quit")
	}
	return false
}

func report(err error, ok func()) {
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	ok()
}
