// Command mutps-cluster launches and supervises a local shard set for
// multi-shard benchmarking: N independent μTPS stores presented as one
// logical keyspace to a cluster-aware client (mutps-loadgen -cluster).
//
// Two modes:
//
//   - in-process (default): every shard is a store + netserver listener in
//     this process — separate indexes, worker pools, and arenas, sharing
//     only the kernel. Zero setup, ideal for quick scaling runs.
//   - multi-process (-exec): every shard is a spawned mutps-server child
//     process, supervised until exit — true process isolation (separate
//     heaps, separate GC), the honest configuration for scaling claims.
//
// Usage:
//
//	mutps-cluster -shards 2 -base-port 7071 -workers 4
//	mutps-cluster -shards 2 -exec ./mutps-server -- -hot 4096
//	mutps-loadgen -cluster localhost:7071,localhost:7072 -mget 64
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"sync"
	"syscall"

	"mutps/internal/cluster"
	"mutps/internal/kvcore"
)

func main() {
	shards := flag.Int("shards", 2, "number of shard servers")
	basePort := flag.Int("base-port", 7071, "first shard listens here; shard i on base-port+i")
	host := flag.String("host", "127.0.0.1", "listen host for every shard")
	engine := flag.String("engine", "hash", "index engine: hash or tree")
	workers := flag.Int("workers", 4, "worker goroutines per shard")
	cr := flag.Int("cr", 1, "cache-resident workers per shard")
	hot := flag.Int("hot", 4096, "hot-set target per shard (0 disables)")
	inflight := flag.Int("inflight", 0, "per-connection server pipelining window (0 = default)")
	execBin := flag.String("exec", "",
		"spawn this mutps-server binary per shard instead of serving in-process; extra args after -- are passed through")
	flag.Parse()

	if *shards < 1 {
		log.Fatal("need at least one shard")
	}
	addrs := make([]string, *shards)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("%s:%d", *host, *basePort+i)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	if *execBin != "" {
		runProcesses(*execBin, addrs, flag.Args(), sig,
			"-engine", *engine,
			"-workers", fmt.Sprint(*workers),
			"-cr", fmt.Sprint(*cr),
			"-hot", fmt.Sprint(*hot),
			"-inflight", fmt.Sprint(*inflight))
		return
	}

	eng := kvcore.Hash
	switch *engine {
	case "hash":
	case "tree":
		eng = kvcore.Tree
	default:
		log.Fatalf("unknown engine %q (want hash or tree)", *engine)
	}
	l, err := cluster.LaunchLocal(*shards, cluster.LocalOptions{
		Engine:    eng,
		Workers:   *workers,
		CRWorkers: *cr,
		HotItems:  *hot,
		Inflight:  *inflight,
		Addrs:     addrs,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("cluster of %d in-process shards serving (%d workers each)", *shards, *workers)
	log.Printf("drive it with: mutps-loadgen -cluster %s", strings.Join(l.Addrs(), ","))
	<-sig
	log.Print("shutting down shards")
	l.Close()
}

// runProcesses spawns one mutps-server child per shard and supervises:
// the cluster stays up until a signal arrives or any child dies (a dead
// shard makes cluster results meaningless, so the supervisor tears the
// rest down rather than limping on).
func runProcesses(bin string, addrs, extraArgs []string, sig chan os.Signal, commonArgs ...string) {
	procs := make([]*exec.Cmd, len(addrs))
	died := make(chan int, len(addrs))
	var wg sync.WaitGroup
	for i, addr := range addrs {
		args := append([]string{"-addr", addr}, commonArgs...)
		args = append(args, extraArgs...)
		cmd := exec.Command(bin, args...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			log.Printf("shard %d (%s): start: %v", i, addr, err)
			stopAll(procs)
			os.Exit(1)
		}
		procs[i] = cmd
		log.Printf("shard %d: %s serving on %s (pid %d)", i, bin, addr, cmd.Process.Pid)
		wg.Add(1)
		go func(i int, cmd *exec.Cmd) {
			defer wg.Done()
			cmd.Wait()
			died <- i
		}(i, cmd)
	}
	log.Printf("drive it with: mutps-loadgen -cluster %s", strings.Join(addrs, ","))
	select {
	case <-sig:
		log.Print("shutting down shard processes")
	case i := <-died:
		log.Printf("shard %d exited (%v); stopping the cluster", i, procs[i].ProcessState)
	}
	stopAll(procs)
	wg.Wait()
}

// stopAll interrupts every live child (mutps-server shuts down cleanly on
// SIGINT).
func stopAll(procs []*exec.Cmd) {
	for _, p := range procs {
		if p != nil && p.Process != nil {
			p.Process.Signal(os.Interrupt)
		}
	}
}
