// Command mutps-server runs a network-attached μTPS key-value store.
//
// Usage:
//
//	mutps-server -addr :7070 -engine tree -workers 8 -cr 2
//	mutps-server -addr :7070 -metrics-addr :9090   # Prometheus on :9090/metrics
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"time"

	"mutps/internal/kvcore"
	"mutps/internal/netserver"
	"mutps/internal/obs"
	"mutps/internal/tuner"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address")
	engine := flag.String("engine", "hash", "index engine: hash (μTPS-H) or tree (μTPS-T)")
	workers := flag.Int("workers", 4, "total worker goroutines")
	cr := flag.Int("cr", 1, "initial cache-resident workers")
	hot := flag.Int("hot", 4096, "hot-set cache target (0 disables)")
	metricsAddr := flag.String("metrics-addr", "",
		"serve Prometheus text on /metrics and the tuner decision trace on /trace at this address (empty disables)")
	idleTimeout := flag.Duration("idle-timeout", 0,
		"close connections idle for this long (0 disables)")
	maxConns := flag.Int("max-conns", 0,
		"cap on concurrently served connections; over-cap clients get a graceful error reply (0 = unlimited)")
	inflight := flag.Int("inflight", 0,
		"per-connection pipelining window: requests decoded but not yet answered (0 = default, 1 = synchronous)")
	arenaOff := flag.Bool("arena-off", false,
		"disable the slab arena: items allocate on the Go heap and replaced items are left to the garbage collector")
	arenaChunk := flag.Int("arena-chunk", 0,
		"arena backing-chunk size in bytes (0 = default 256KiB)")
	memBudget := flag.String("memory-budget", "",
		"arena live-byte budget with optional K/M/G suffix, e.g. 512M; when crossed, the coldest items are evicted (empty = unbounded)")
	coldDir := flag.String("cold-dir", "",
		"directory for the SSD cold tier: evicted values spill there and are served (and promoted) on RAM misses (empty = evicted values drop)")
	coldSegBytes := flag.String("cold-segment-bytes", "",
		"cold-tier segment size with optional K/M/G suffix (empty = 64M)")
	coldCkpt := flag.Duration("cold-ckpt-interval", 0,
		"period of the cold tier's location-index checkpoint; restart replays only the log written since the last checkpoint (0 = 30s default, negative = disable)")
	defaultTTL := flag.Duration("default-ttl", 0,
		"TTL applied to puts that carry no explicit TTL, e.g. 10m (0 = never expire)")
	transport := flag.String("transport", "",
		"connection transport: goroutine (portable, one goroutine per connection) or epoll (Linux event loops, idle connections cost ~0); empty honors MUTPS_TRANSPORT then defaults to goroutine")
	eventLoops := flag.Int("event-loops", 0,
		"epoll transport: number of event-loop shards, each one epoll instance + SO_REUSEPORT listener + completer goroutine (0 = GOMAXPROCS, capped at 32)")
	autotune := flag.Bool("autotune", false,
		"run the closed-loop auto-tuner: sample throughput/latency, and on a sustained shift re-search the thread split and hot-set size online, without pausing traffic")
	autotuneWindow := flag.Duration("autotune-window", 10*time.Millisecond,
		"measurement window per search probe (the paper's 10ms feedback monitor)")
	autotuneInterval := flag.Duration("autotune-interval", 100*time.Millisecond,
		"sampling cadence of the trigger monitors")
	autotuneCooldown := flag.Duration("autotune-cooldown", 3*time.Second,
		"minimum time between retunes (anti-oscillation hysteresis)")
	autotuneMinGain := flag.Float64("autotune-min-gain", 0.05,
		"minimum relative improvement a search winner must show over the incumbent; below it the tuner reverts")
	tunerPriors := flag.String("tuner-priors", "",
		"per-workload-signature best-known-config JSON (seed offline with 'mutps-bench -sweep-priors'); loaded at startup, rewritten with online refinements at shutdown (empty = start cold)")
	flag.Parse()

	budget, err := parseSize(*memBudget)
	if err != nil {
		log.Fatalf("-memory-budget: %v", err)
	}
	segBytes, err := parseSize(*coldSegBytes)
	if err != nil {
		log.Fatalf("-cold-segment-bytes: %v", err)
	}

	eng := kvcore.Hash
	switch *engine {
	case "hash":
	case "tree":
		eng = kvcore.Tree
	default:
		log.Fatalf("unknown engine %q (want hash or tree)", *engine)
	}

	store, err := kvcore.Open(kvcore.Config{
		Engine:     eng,
		Workers:    *workers,
		CRWorkers:  *cr,
		HotItems:   *hot,
		ArenaOff:   *arenaOff,
		ArenaChunk: *arenaChunk,

		MemoryBudget:           budget,
		ColdDir:                *coldDir,
		ColdSegmentBytes:       segBytes,
		ColdCheckpointInterval: *coldCkpt,
		DefaultTTL:             *defaultTTL,
	})
	if err != nil {
		log.Fatal(err)
	}
	if budget > 0 || *coldDir != "" {
		log.Printf("lifecycle: budget=%s cold-dir=%q default-ttl=%v",
			*memBudget, *coldDir, *defaultTTL)
	}
	// Runtime GC signals ride the same registry, so a before/after arena
	// comparison reads straight off /metrics (and the stats op).
	obs.RegisterRuntimeMetrics(store.Metrics())
	if *hot > 0 {
		// Without the refresher the hot set never populates and the
		// cache-resident layer serves nothing (mutps_hotset_hit_ratio
		// pins at 0).
		store.StartRefresher(100 * time.Millisecond)
	}
	// ListenAndServe owns socket creation so the epoll transport can open
	// its SO_REUSEPORT-sharded listeners; the goroutine transport (or a
	// non-Linux build) gets a plain listener on the same address.
	srv, err := netserver.ListenAndServe(store, *addr, netserver.Config{
		IdleTimeout: *idleTimeout,
		MaxConns:    *maxConns,
		MaxInflight: *inflight,
		Transport:   *transport,
		EventLoops:  *eventLoops,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("μTPS-%s serving on %s via %s transport (%d workers, %d at CR layer, hot=%d)",
		map[kvcore.Engine]string{kvcore.Hash: "H", kvcore.Tree: "T"}[eng],
		srv.Addr(), srv.Transport(), *workers, *cr, *hot)

	// Closed-loop autotuning (§3.5): started after the network server so the
	// latency trigger can tap its per-op histograms, which are registered on
	// the store's shared metrics registry.
	var ctl *tuner.Controller
	var priors *tuner.Priors
	if *autotune {
		priors = tuner.NewPriors()
		if *tunerPriors != "" {
			if p, err := tuner.LoadPriors(*tunerPriors); err == nil {
				priors = p
				log.Printf("autotune: %d workload-signature priors loaded from %s", p.Len(), *tunerPriors)
			} else if !os.IsNotExist(err) {
				log.Fatalf("-tuner-priors: %v", err)
			}
		}
		tn := &kvcore.Tunable{S: store, Window: *autotuneWindow}
		// Exact-mean latency feed: sum the _sum/_count series of every per-op
		// network latency histogram (never interpolated bucket quantiles).
		var hists []*obs.Histogram
		for _, l := range []string{`op="get"`, `op="put"`, `op="delete"`, `op="scan"`, `op="mget"`} {
			if h, ok := store.Metrics().FindHistogram("mutps_net_op_latency_nanoseconds", l); ok {
				hists = append(hists, h)
			}
		}
		ccfg := tuner.ControllerConfig{
			Interval:  *autotuneInterval,
			Cooldown:  *autotuneCooldown,
			MinGain:   *autotuneMinGain,
			Rate:      store.Ops,
			Priors:    priors,
			Signature: tn.Signature,
			Trace:     store.Trace(),
		}
		if len(hists) > 0 {
			ccfg.LatFeed = func() (sum, count uint64) {
				for _, h := range hists {
					snap := h.Snapshot()
					sum += snap.Sum
					count += snap.Count
				}
				return sum, count
			}
		}
		ctl = tuner.NewController(tn, ccfg)
		ctl.Start()
		log.Printf("autotune: on (window=%v interval=%v cooldown=%v min-gain=%.0f%%)",
			*autotuneWindow, *autotuneInterval, *autotuneCooldown, *autotuneMinGain*100)
	}

	if *metricsAddr != "" {
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatal(err)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.Handler(store.Metrics()))
		mux.Handle("/trace", obs.TraceHandler(store.Trace()))
		go func() {
			if err := http.Serve(mln, mux); err != nil {
				log.Printf("metrics endpoint: %v", err)
			}
		}()
		log.Printf("metrics on http://%s/metrics, decision trace on /trace", mln.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Printf("shutting down; stats: %+v", store.Stats())
	if ctl != nil {
		ctl.Stop()
		ticks, triggers, retunes, reverts := ctl.Counters()
		log.Printf("autotune: ticks=%d triggers=%d retunes=%d reverts=%d", ticks, triggers, retunes, reverts)
		if *tunerPriors != "" {
			// Persist online refinements so the next start re-seeds from them.
			if err := priors.Save(*tunerPriors); err != nil {
				log.Printf("autotune: saving priors: %v", err)
			}
		}
	}
	srv.Close()
	store.Close()
}

// parseSize parses a byte count with an optional K/M/G suffix (powers of
// 1024, case-insensitive). An empty string is 0.
func parseSize(s string) (int64, error) {
	if s == "" {
		return 0, nil
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'k', 'K':
		mult, s = 1<<10, s[:len(s)-1]
	case 'm', 'M':
		mult, s = 1<<20, s[:len(s)-1]
	case 'g', 'G':
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q (want digits with optional K/M/G suffix)", s)
	}
	return n * mult, nil
}
