// Command mutps-server runs a network-attached μTPS key-value store.
//
// Usage:
//
//	mutps-server -addr :7070 -engine tree -workers 8 -cr 2
//	mutps-server -addr :7070 -metrics-addr :9090   # Prometheus on :9090/metrics
package main

import (
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"mutps/internal/kvcore"
	"mutps/internal/netserver"
	"mutps/internal/obs"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address")
	engine := flag.String("engine", "hash", "index engine: hash (μTPS-H) or tree (μTPS-T)")
	workers := flag.Int("workers", 4, "total worker goroutines")
	cr := flag.Int("cr", 1, "initial cache-resident workers")
	hot := flag.Int("hot", 4096, "hot-set cache target (0 disables)")
	metricsAddr := flag.String("metrics-addr", "",
		"serve Prometheus text on /metrics and the tuner decision trace on /trace at this address (empty disables)")
	idleTimeout := flag.Duration("idle-timeout", 0,
		"close connections idle for this long (0 disables)")
	maxConns := flag.Int("max-conns", 0,
		"cap on concurrently served connections; over-cap clients get a graceful error reply (0 = unlimited)")
	inflight := flag.Int("inflight", 0,
		"per-connection pipelining window: requests decoded but not yet answered (0 = default, 1 = synchronous)")
	arenaOff := flag.Bool("arena-off", false,
		"disable the slab arena: items allocate on the Go heap and replaced items are left to the garbage collector")
	arenaChunk := flag.Int("arena-chunk", 0,
		"arena backing-chunk size in bytes (0 = default 256KiB)")
	flag.Parse()

	eng := kvcore.Hash
	switch *engine {
	case "hash":
	case "tree":
		eng = kvcore.Tree
	default:
		log.Fatalf("unknown engine %q (want hash or tree)", *engine)
	}

	store, err := kvcore.Open(kvcore.Config{
		Engine:     eng,
		Workers:    *workers,
		CRWorkers:  *cr,
		HotItems:   *hot,
		ArenaOff:   *arenaOff,
		ArenaChunk: *arenaChunk,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Runtime GC signals ride the same registry, so a before/after arena
	// comparison reads straight off /metrics (and the stats op).
	obs.RegisterRuntimeMetrics(store.Metrics())
	if *hot > 0 {
		// Without the refresher the hot set never populates and the
		// cache-resident layer serves nothing (mutps_hotset_hit_ratio
		// pins at 0).
		store.StartRefresher(100 * time.Millisecond)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	srv := netserver.ServeConfig(store, ln, netserver.Config{
		IdleTimeout: *idleTimeout,
		MaxConns:    *maxConns,
		MaxInflight: *inflight,
	})
	log.Printf("μTPS-%s serving on %s (%d workers, %d at CR layer, hot=%d)",
		map[kvcore.Engine]string{kvcore.Hash: "H", kvcore.Tree: "T"}[eng],
		srv.Addr(), *workers, *cr, *hot)

	if *metricsAddr != "" {
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatal(err)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.Handler(store.Metrics()))
		mux.Handle("/trace", obs.TraceHandler(store.Trace()))
		go func() {
			if err := http.Serve(mln, mux); err != nil {
				log.Printf("metrics endpoint: %v", err)
			}
		}()
		log.Printf("metrics on http://%s/metrics, decision trace on /trace", mln.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Printf("shutting down; stats: %+v", store.Stats())
	srv.Close()
	store.Close()
}
