// Command mutps-bench regenerates the paper's evaluation tables and
// figures on the simulated substrate.
//
// Usage:
//
//	mutps-bench -list
//	mutps-bench -fig 7            # one experiment at quick scale
//	mutps-bench -fig all -full    # everything at the paper's geometry
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mutps/internal/bench"
	"mutps/internal/simkv"
)

func main() {
	fig := flag.String("fig", "", "experiment id (e.g. 2a, 7, 13b, tab1, tuner-ablation) or 'all'")
	full := flag.Bool("full", false, "use the paper's full geometry (28 cores, 42 MB LLC, 10M keys); slower")
	list := flag.Bool("list", false, "list experiment ids")
	sweepPriors := flag.String("sweep-priors", "",
		"run the simkv config sweeper over the standard workload grid and write the per-signature best-known configs to this JSON file (feed to mutps-server -tuner-priors)")
	sweepWindow := flag.Int("sweep-window", 20000, "simulated requests per sweep probe window")
	sweepSeed := flag.Uint64("sweep-seed", 1, "workload seed for the sweep")
	flag.Parse()

	if *sweepPriors != "" {
		start := time.Now()
		grid := simkv.DefaultSweepGrid()
		fmt.Printf("sweeping %d workload points (window %d requests)...\n", len(grid), *sweepWindow)
		priors := simkv.SweepPriors(simkv.SweepParams(), grid, *sweepWindow, *sweepSeed)
		if err := priors.Save(*sweepPriors); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%d signature priors written to %s in %v\n",
			priors.Len(), *sweepPriors, time.Since(start).Round(time.Millisecond))
		return
	}

	if *list || *fig == "" {
		fmt.Println("experiments:")
		for _, e := range bench.Experiments() {
			fmt.Printf("  %s\n", e.ID)
		}
		if *fig == "" && !*list {
			os.Exit(2)
		}
		return
	}

	scale := bench.QuickScale()
	if *full {
		scale = bench.FullScale()
	}
	fmt.Printf("scale: %s (%d cores, %d keys)\n\n", scale.Name, scale.HW.Cores, scale.Keys)

	want := strings.Split(*fig, ",")
	ran := 0
	for _, e := range bench.Experiments() {
		if *fig != "all" && !contains(want, e.ID) {
			continue
		}
		start := time.Now()
		e.Run(scale, os.Stdout)
		fmt.Printf("  [%s finished in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *fig)
		os.Exit(2)
	}
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
