// Command mutps-loadgen drives a mutps-server with YCSB-style load (or a
// replayed trace file) over TCP and reports throughput and latency
// percentiles — the client-node role in the paper's testbed.
//
// Usage:
//
//	mutps-loadgen -addr localhost:7070 -mix A -keys 100000 -ops 100000
//	mutps-loadgen -addr localhost:7070 -trace requests.csv
//	mutps-loadgen -cluster localhost:7071,localhost:7072 -mget 64 -mix C
package main

import (
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"mutps/internal/benchfmt"
	"mutps/internal/cluster"
	"mutps/internal/netserver"
	"mutps/internal/obs"
	"mutps/internal/scenario"
	"mutps/internal/workload"
)

// backlogged counts requests the server shed with a retryable
// StatusBacklogged reply: retried on the synchronous path, skipped on the
// pipelined path, reported either way so overload is visible in the run
// summary instead of aborting it.
var backlogged atomic.Uint64

// backloggedRetryDelay is the backoff before retrying a shed request.
const backloggedRetryDelay = 200 * time.Microsecond

func main() {
	addr := flag.String("addr", "localhost:7070", "server address")
	mixName := flag.String("mix", "A", "YCSB mix: A, B, C, E, PUT, GET")
	keys := flag.Uint64("keys", 100_000, "keyspace size")
	theta := flag.Float64("theta", 0.99, "zipfian skew (0 = uniform)")
	valueSize := flag.Int("value", 64, "value size in bytes")
	valueSpread := flag.Int("value-spread", 0,
		"sample put value sizes uniformly in [value, value+spread]; a spread crossing power-of-two boundaries forces item replacement (not in-place update) on the server (0 = fixed size)")
	ops := flag.Int("ops", 100_000, "total operations")
	clients := flag.Int("clients", 4, "concurrent connections")
	depth := flag.Int("depth", 1, "deprecated alias for -inflight")
	inflight := flag.Int("inflight", 0, "requests in flight per connection (>1 uses the pipelined client; matches the server's per-connection window)")
	load := flag.Bool("load", true, "pre-populate the keyspace first")
	traceFile := flag.String("trace", "", "replay a CSV trace instead of YCSB")
	opTimeout := flag.Duration("op-timeout", 0,
		"per-operation deadline on synchronous connections; a timed-out connection is abandoned (0 disables)")
	clusterAddrs := flag.String("cluster", "",
		"comma-separated shard addresses; enables the cluster-aware client (consistent-hash routing, per-shard pipelines) instead of -addr")
	mgetBatch := flag.Int("mget", 64,
		"cluster mode: group this many consecutive gets into batched per-shard mget frames (1 = per-key gets)")
	largeThreshold := flag.Int("large-threshold", 0,
		"cluster mode: route puts with values >= this many bytes to the large-object shard set (0 disables size-aware placement)")
	largeShards := flag.String("large-shards", "",
		"cluster mode: comma-separated shard indices forming the large-object set (default: the last shard)")
	benchJSON := flag.String("bench-json", "",
		"append a machine-readable JSON-lines result record (ops/s, P50/P99, run parameters) to this file; works for single-node and cluster runs")
	putTTL := flag.Duration("ttl", 0,
		"stamp this TTL on every put (single-node mode), driving the server's expiry path under load (0 = no TTL)")
	conns := flag.Int("conns", 0,
		"sparse-activity mode: hold this many open connections and drive only an -active-fraction subset at a time, rotating; measures what mostly-idle connections cost the server (0 = off)")
	activeFraction := flag.Float64("active-fraction", 0.01,
		"sparse-activity mode: fraction of -conns issuing requests at any instant; activity rotates across the whole set in short pipelined bursts")
	scenarioName := flag.String("scenario", "",
		"run a scripted dynamic-workload scenario from the benchmark matrix against the server, emitting one normalized record per measurement window ('list' prints the matrix); supersedes -mix/-ops")
	scenarioScale := flag.Float64("scenario-scale", 1,
		"multiply every scenario phase duration by this factor (CI smoke runs use ~0.05)")
	scenarioWindow := flag.Duration("scenario-window", 100*time.Millisecond,
		"measurement-window width of -scenario records")
	flag.Parse()
	// -inflight supersedes -depth; the old name keeps working as an alias.
	if *inflight > 0 {
		*depth = *inflight
	}

	if *scenarioName != "" {
		runScenario(scenarioRun{
			name:      *scenarioName,
			scale:     *scenarioScale,
			addr:      *addr,
			window:    *scenarioWindow,
			load:      *load,
			opTimeout: *opTimeout,
			benchJSON: *benchJSON,
		})
		return
	}

	mixes := map[string]workload.Mix{
		"A": workload.MixYCSBA, "B": workload.MixYCSBB, "C": workload.MixYCSBC,
		"E": workload.MixYCSBE, "PUT": workload.MixPutOnly, "GET": workload.MixYCSBC,
	}
	mix, ok := mixes[*mixName]
	if !ok {
		log.Fatalf("unknown mix %q", *mixName)
	}
	var sizeDist workload.SizeDist = workload.FixedSize(*valueSize)
	if *valueSpread > 0 {
		sizeDist = workload.UniformSize{Min: *valueSize, Max: *valueSize + *valueSpread}
	}

	var trace []workload.Request
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			log.Fatal(err)
		}
		trace, err = workload.ReadTrace(f, *ops)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("replaying %d trace requests\n", len(trace))
	}

	if *clusterAddrs != "" {
		runCluster(clusterRun{
			addrs:     strings.Split(*clusterAddrs, ","),
			mixName:   *mixName,
			mix:       mix,
			sizeDist:  sizeDist,
			keys:      *keys,
			theta:     *theta,
			valueSize: *valueSize,
			ops:       *ops,
			clients:   *clients,
			inflight:  *depth,
			mgetBatch: *mgetBatch,
			threshold: *largeThreshold,
			largeSet:  parseShardList(*largeShards),
			load:      *load && trace == nil,
			trace:     trace,
			benchJSON: *benchJSON,
		})
		return
	}

	if *load && trace == nil {
		cli, err := netserver.DialTimeout(*addr, 0, *opTimeout)
		if err != nil {
			log.Fatal(err)
		}
		val := make([]byte, *valueSize)
		start := time.Now()
		for k := uint64(0); k < *keys; k++ {
			for {
				err := cli.Put(k, val)
				if errors.Is(err, netserver.ErrBacklogged) {
					backlogged.Add(1)
					time.Sleep(backloggedRetryDelay)
					continue
				}
				if err != nil {
					log.Fatal(err)
				}
				break
			}
		}
		cli.Close()
		fmt.Printf("loaded %d keys in %v\n", *keys, time.Since(start).Round(time.Millisecond))
	}

	if *conns > 0 {
		runSparse(sparseRun{
			addr:      *addr,
			conns:     *conns,
			fraction:  *activeFraction,
			inflight:  *depth,
			mixName:   *mixName,
			mix:       mix,
			sizeDist:  sizeDist,
			keys:      *keys,
			theta:     *theta,
			valueSize: *valueSize,
			ops:       *ops,
			opTimeout: *opTimeout,
			benchJSON: *benchJSON,
		})
		return
	}

	// Latencies land in a fixed-bucket log₂ histogram sharded per client —
	// O(1) memory regardless of -ops, where the old sort-all-samples
	// approach kept every duration in RAM.
	perClient := *ops / *clients
	hist := obs.NewHistogram(*clients)
	var wg sync.WaitGroup
	serverBefore := serverGCSnapshot(*addr, *opTimeout)
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	start := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var gen interface{ Next() workload.Request }
			if trace != nil {
				gen = workload.NewTraceGenerator(trace)
			} else {
				gen = workload.NewGenerator(workload.Config{
					Keys: *keys, Theta: *theta, Mix: mix,
					ValueSize: sizeDist, Seed: uint64(c + 1),
				})
			}
			if *depth > 1 {
				runPipelined(c, *addr, *depth, *valueSize, perClient, gen, hist)
				return
			}
			cli, err := netserver.DialTimeout(*addr, 0, *opTimeout)
			if err != nil {
				log.Fatal(err)
			}
			defer cli.Close()
			buf := make([]byte, *valueSize)
			for i := 0; i < perClient; i++ {
				req := gen.Next()
				t0 := time.Now()
				for {
					var err error
					switch req.Op {
					case workload.OpGet:
						_, _, err = cli.Get(req.Key)
					case workload.OpPut:
						v := buf
						if req.ValueSize > 0 && req.ValueSize != len(buf) {
							v = make([]byte, req.ValueSize)
						}
						if *putTTL > 0 {
							err = cli.PutTTL(req.Key, v, *putTTL)
						} else {
							err = cli.Put(req.Key, v)
						}
					case workload.OpDelete:
						_, err = cli.Delete(req.Key)
					case workload.OpScan:
						_, err = cli.Scan(req.Key, req.ScanCount)
					}
					if errors.Is(err, netserver.ErrBacklogged) {
						backlogged.Add(1)
						time.Sleep(backloggedRetryDelay)
						continue
					}
					if err != nil {
						log.Fatalf("client %d: %v", c, err)
					}
					break
				}
				hist.Record(c, uint64(time.Since(t0)))
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)
	serverAfter := serverGCSnapshot(*addr, *opTimeout)

	snap := hist.Snapshot()
	pct := func(p float64) time.Duration { return time.Duration(snap.Quantile(p)) }
	fmt.Printf("%d ops across %d clients in %v\n", snap.Count, *clients, elapsed.Round(time.Millisecond))
	fmt.Printf("throughput: %.0f ops/s\n", float64(snap.Count)/elapsed.Seconds())
	fmt.Printf("latency: P50 %v  P95 %v  P99 %v  max %v\n",
		pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), time.Duration(snap.Max).Round(time.Microsecond))
	if n := backlogged.Load(); n > 0 {
		fmt.Printf("backpressure: server shed %d requests (retried synchronously, skipped when pipelined)\n", n)
	}
	printAllocSummary(snap.Count, elapsed, &memBefore, &memAfter, serverBefore, serverAfter)
	if *benchJSON != "" {
		rec := benchfmt.New("loadgen")
		rec.Config = map[string]any{
			"mix":        *mixName,
			"keys":       *keys,
			"theta":      *theta,
			"value_size": *valueSize,
			"ttl_ns":     int64(*putTTL),
			"clients":    *clients,
			"inflight":   *depth,
		}
		rec.Ops = snap.Count
		rec.OpsPerSec = float64(snap.Count) / elapsed.Seconds()
		rec.P50Ns = float64(snap.Quantile(0.50))
		rec.P99Ns = float64(snap.Quantile(0.99))
		rec.Extra = map[string]any{
			"p95_ns":     snap.Quantile(0.95),
			"max_ns":     snap.Max,
			"backlogged": backlogged.Load(),
		}
		appendBench(*benchJSON, rec)
	}
}

// serverGCSnapshot fetches the server's stats payload on a throwaway
// connection, for the before/after GC delta in the run summary. Best
// effort: a server too old to speak the versioned stats op (or already
// gone at run end) yields nil and the summary omits the server column.
func serverGCSnapshot(addr string, opTimeout time.Duration) map[string]float64 {
	cli, err := netserver.DialTimeout(addr, 0, opTimeout)
	if err != nil {
		return nil
	}
	defer cli.Close()
	m, err := cli.StatsMap()
	if err != nil {
		return nil
	}
	return m
}

// printAllocSummary reports the allocation and GC cost of the measured
// run: the client side from this process's MemStats delta, the server
// side (when available) from the mutps_go_* runtime metrics delta plus
// the arena's retire/recycle counters. This is the operational readout
// of the GC-quiet write path — a server running with the arena shows
// near-zero GC cycles per second here; -arena-off shows the difference.
func printAllocSummary(ops uint64, elapsed time.Duration,
	before, after *runtime.MemStats, srvBefore, srvAfter map[string]float64) {
	if ops == 0 {
		return
	}
	allocs := after.Mallocs - before.Mallocs
	gcs := after.NumGC - before.NumGC
	pause := time.Duration(after.PauseTotalNs - before.PauseTotalNs)
	fmt.Printf("client alloc: %.1f allocs/op, %.1f B/op, %d GC cycles (%.2f/s), %v total pause\n",
		float64(allocs)/float64(ops),
		float64(after.TotalAlloc-before.TotalAlloc)/float64(ops),
		gcs, float64(gcs)/elapsed.Seconds(), pause.Round(10*time.Microsecond))
	if srvBefore == nil || srvAfter == nil {
		return
	}
	if _, ok := srvAfter["mutps_go_gc_cycles_total"]; !ok {
		return
	}
	sgc := srvAfter["mutps_go_gc_cycles_total"] - srvBefore["mutps_go_gc_cycles_total"]
	fmt.Printf("server GC: %.0f cycles (%.2f/s), heap live %.1f MiB, pause p99 %v\n",
		sgc, sgc/elapsed.Seconds(),
		srvAfter["mutps_go_heap_live_bytes"]/(1<<20),
		time.Duration(srvAfter[`mutps_go_gc_pause_seconds{q="0.99"}`]*float64(time.Second)).Round(time.Microsecond))
	if ret := srvAfter["mutps_items_retired_total"] - srvBefore["mutps_items_retired_total"]; ret > 0 {
		fmt.Printf("server arena: %.0f items retired, %.0f recycled, %.0f pending\n",
			ret, srvAfter["mutps_items_recycled_total"]-srvBefore["mutps_items_recycled_total"],
			srvAfter["mutps_items_retired_pending"])
	}
}

// clusterRun carries the cluster-mode parameters from flag parsing.
type clusterRun struct {
	addrs     []string
	mixName   string
	mix       workload.Mix
	sizeDist  workload.SizeDist
	keys      uint64
	theta     float64
	valueSize int
	ops       int
	clients   int
	inflight  int
	mgetBatch int
	threshold int
	largeSet  []int
	load      bool
	trace     []workload.Request
	benchJSON string
}

// parseShardList parses "0,2,3" into shard indices.
func parseShardList(s string) []int {
	if s == "" {
		return nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			log.Fatalf("bad shard index %q in -large-shards", part)
		}
		out = append(out, n)
	}
	return out
}

// runCluster drives the shard set through the cluster-aware client:
// consistent-hash routing, one pipelined connection per shard, and
// consecutive gets coalesced into batched per-shard mget frames. Batch
// latency is recorded once per key (every key in a frame experienced it).
func runCluster(r clusterRun) {
	cli, err := cluster.Dial(cluster.Config{
		Addrs:         r.addrs,
		Inflight:      max(r.inflight, 2),
		MGetBatch:     r.mgetBatch,
		SizeThreshold: r.threshold,
		LargeShards:   r.largeSet,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()
	fmt.Printf("cluster of %d shards: %s\n", cli.Shards(), strings.Join(r.addrs, ", "))

	if r.load {
		// Stripe the load across goroutines: cluster puts are synchronous
		// (one RTT each), so concurrency is what overlaps the per-shard
		// round trips.
		loaders := max(r.clients, 8)
		start := time.Now()
		var lwg sync.WaitGroup
		for w := 0; w < loaders; w++ {
			lwg.Add(1)
			go func(w int) {
				defer lwg.Done()
				val := make([]byte, r.valueSize)
				for k := uint64(w); k < r.keys; k += uint64(loaders) {
					for {
						err := cli.Put(k, val)
						if errors.Is(err, netserver.ErrBacklogged) {
							backlogged.Add(1)
							time.Sleep(backloggedRetryDelay)
							continue
						}
						if err != nil {
							log.Fatal(err)
						}
						break
					}
				}
			}(w)
		}
		lwg.Wait()
		fmt.Printf("loaded %d keys across %d shards in %v\n",
			r.keys, cli.Shards(), time.Since(start).Round(time.Millisecond))
	}

	perClient := r.ops / r.clients
	hist := obs.NewHistogram(r.clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < r.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var gen interface{ Next() workload.Request }
			if r.trace != nil {
				gen = workload.NewTraceGenerator(r.trace)
			} else {
				gen = workload.NewGenerator(workload.Config{
					Keys: r.keys, Theta: r.theta, Mix: r.mix,
					ValueSize: r.sizeDist, Seed: uint64(c + 1),
				})
			}
			clusterWorker(c, cli, gen, perClient, r, hist)
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	snap := hist.Snapshot()
	pct := func(p float64) time.Duration { return time.Duration(snap.Quantile(p)) }
	opsPerSec := float64(snap.Count) / elapsed.Seconds()
	fmt.Printf("%d ops across %d clients in %v\n", snap.Count, r.clients, elapsed.Round(time.Millisecond))
	fmt.Printf("throughput: %.0f ops/s aggregate over %d shards\n", opsPerSec, cli.Shards())
	fmt.Printf("latency: P50 %v  P95 %v  P99 %v  max %v\n",
		pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), time.Duration(snap.Max).Round(time.Microsecond))
	if n := backlogged.Load(); n > 0 {
		fmt.Printf("backpressure: shards shed %d requests\n", n)
	}

	m := cli.Metrics().SnapshotMap()
	frames := m["mutps_cluster_mget_frames_total"]
	keysPerFrame := 0.0
	if frames > 0 {
		keysPerFrame = m["mutps_cluster_mget_keys_per_frame_sum"] / frames
		fmt.Printf("fan-out: %.0f mget frames, %.1f keys/frame avg, %.0f fallback frames, %.0f large-routed puts\n",
			frames, keysPerFrame, m["mutps_cluster_mget_fallback_total"], m["mutps_cluster_large_routed_total"])
	}
	if r.benchJSON != "" {
		rec := benchfmt.New("cluster-loadgen")
		rec.Config = map[string]any{
			"shards":         cli.Shards(),
			"mix":            r.mixName,
			"clients":        r.clients,
			"inflight":       r.inflight,
			"batch_size":     r.mgetBatch,
			"size_threshold": r.threshold,
		}
		rec.Ops = snap.Count
		rec.OpsPerSec = opsPerSec
		rec.P50Ns = float64(snap.Quantile(0.50))
		rec.P99Ns = float64(snap.Quantile(0.99))
		rec.Extra = map[string]any{
			"avg_keys_per_frame": keysPerFrame,
			"mget_frames":        frames,
			"fallback_frames":    m["mutps_cluster_mget_fallback_total"],
			"backlogged":         backlogged.Load(),
		}
		appendBench(r.benchJSON, rec)
	}
}

// clusterWorker issues one client goroutine's share of the workload:
// consecutive gets accumulate into an mget batch that flushes at
// r.mgetBatch keys (or when a non-get op arrives, preserving rough
// program order), everything else runs point-to-point.
func clusterWorker(c int, cli *cluster.Client,
	gen interface{ Next() workload.Request }, ops int, r clusterRun, hist *obs.Histogram) {
	batch := make([]uint64, 0, max(r.mgetBatch, 1))
	buf := make([]byte, r.valueSize)
	flushBatch := func() {
		if len(batch) == 0 {
			return
		}
		for {
			t0 := time.Now()
			_, _, err := cli.MGet(batch)
			if errors.Is(err, netserver.ErrBacklogged) {
				backlogged.Add(1)
				time.Sleep(backloggedRetryDelay)
				continue // gets are idempotent: retry the whole frame set
			}
			if err != nil {
				log.Fatalf("client %d: mget: %v", c, err)
			}
			lat := uint64(time.Since(t0))
			for range batch {
				hist.Record(c, lat)
			}
			break
		}
		batch = batch[:0]
	}
	for i := 0; i < ops; i++ {
		req := gen.Next()
		if req.Op == workload.OpGet && r.mgetBatch > 1 {
			batch = append(batch, req.Key)
			if len(batch) >= r.mgetBatch {
				flushBatch()
			}
			continue
		}
		flushBatch()
		t0 := time.Now()
		for {
			var err error
			switch req.Op {
			case workload.OpGet:
				_, _, err = cli.Get(req.Key)
			case workload.OpPut:
				v := buf
				if req.ValueSize > 0 && req.ValueSize != len(buf) {
					v = make([]byte, req.ValueSize)
				}
				err = cli.Put(req.Key, v)
			case workload.OpDelete:
				_, err = cli.Delete(req.Key)
			case workload.OpScan:
				// Scans are single-shard ops with no cross-shard merge yet;
				// cluster mode degrades them to a get on the routed shard.
				_, _, err = cli.Get(req.Key)
			}
			if errors.Is(err, netserver.ErrBacklogged) {
				backlogged.Add(1)
				time.Sleep(backloggedRetryDelay)
				continue
			}
			if err != nil {
				log.Fatalf("client %d: %v", c, err)
			}
			break
		}
		hist.Record(c, uint64(time.Since(t0)))
	}
	flushBatch()
}

// appendBench stamps and appends one normalized record (schema
// mutps-bench/v1, the same shape every BENCH_*.json artifact carries) so
// successive runs accumulate into a comparable JSON-lines series.
func appendBench(path string, rec benchfmt.Record) {
	rec.UnixNanos = time.Now().UnixNano()
	if err := benchfmt.Append(path, rec); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bench record appended to %s\n", path)
}

// scenarioRun carries the dynamic-scenario parameters from flag parsing.
type scenarioRun struct {
	name      string
	scale     float64
	addr      string
	window    time.Duration
	load      bool
	opTimeout time.Duration
	benchJSON string
}

// scenarioClient adapts a synchronous network connection to the scenario
// runner's Client interface, with the usual shed-request retry.
type scenarioClient struct {
	cli *netserver.Client
	buf []byte
}

func (sc *scenarioClient) Do(req workload.Request) error {
	for {
		var err error
		switch req.Op {
		case workload.OpGet:
			_, _, err = sc.cli.Get(req.Key)
		case workload.OpPut:
			if req.ValueSize > cap(sc.buf) {
				sc.buf = make([]byte, req.ValueSize)
			}
			err = sc.cli.Put(req.Key, sc.buf[:req.ValueSize])
		case workload.OpDelete:
			_, err = sc.cli.Delete(req.Key)
		case workload.OpScan:
			_, err = sc.cli.Scan(req.Key, req.ScanCount)
		}
		if errors.Is(err, netserver.ErrBacklogged) {
			backlogged.Add(1)
			time.Sleep(backloggedRetryDelay)
			continue
		}
		return err
	}
}

// runScenario drives one scripted dynamic workload from the scenario
// matrix against a live server — the network-side counterpart of the
// in-process harness in internal/bench — emitting one normalized record
// per measurement window into -bench-json. This is what produces a
// BENCH_scenarios.json series for a real (possibly autotuned) server
// rather than an in-process store.
func runScenario(r scenarioRun) {
	if r.name == "list" {
		fmt.Println("scenario matrix:")
		for _, n := range scenario.Names() {
			s, _ := scenario.Lookup(n)
			fmt.Printf("  %-16s %s (%v)\n", n, s.Description, s.Duration())
		}
		return
	}
	sc, ok := scenario.Lookup(r.name)
	if !ok {
		log.Fatalf("unknown scenario %q; -scenario list shows the matrix", r.name)
	}
	if r.scale != 1 {
		sc = scenario.Scaled(sc, r.scale)
	}
	cli, err := netserver.DialTimeout(r.addr, 0, r.opTimeout)
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	if r.load {
		val := make([]byte, sc.MaxValueSize())
		start := time.Now()
		for k := uint64(0); k < sc.Keys; k++ {
			for {
				err := cli.Put(k, val)
				if errors.Is(err, netserver.ErrBacklogged) {
					backlogged.Add(1)
					time.Sleep(backloggedRetryDelay)
					continue
				}
				if err != nil {
					log.Fatal(err)
				}
				break
			}
		}
		fmt.Printf("loaded %d keys in %v\n", sc.Keys, time.Since(start).Round(time.Millisecond))
	}

	runner := &scenario.Runner{
		Scenario: sc,
		Client:   &scenarioClient{cli: cli, buf: make([]byte, sc.MaxValueSize())},
		Bench:    "scenario-net",
		Window:   r.window,
		Seed:     1,
		OnPhase: func(i int, ph scenario.Phase) {
			fmt.Printf("phase %d/%d: %s (%v)\n", i+1, len(sc.Phases), ph.Name, ph.Duration)
		},
	}
	// A second connection samples the server at each window close, so
	// every record also carries the adaptation observables: GC activity,
	// reconfigurations (tuner probes and applies land here), hot-set
	// size, and the live thread split. Best effort — a server too old
	// for stats2 just yields records without extras.
	if statsCli, err := netserver.DialTimeout(r.addr, 0, r.opTimeout); err == nil {
		defer statsCli.Close()
		var lastGC, lastReconf float64
		lastT := time.Now()
		if m, err := statsCli.StatsMap(); err == nil {
			lastGC, lastReconf = m["mutps_go_gc_cycles_total"], m["mutps_reconfigurations_total"]
		}
		runner.Extra = func() map[string]any {
			m, err := statsCli.StatsMap()
			if err != nil {
				return nil
			}
			now := time.Now()
			ex := map[string]any{
				"server_reconfigs":  m["mutps_reconfigurations_total"] - lastReconf,
				"server_hot_items":  m["mutps_hotset_size"],
				"server_cr_workers": m[`mutps_workers{layer="cr"}`],
			}
			if dt := now.Sub(lastT).Seconds(); dt > 0 {
				ex["server_gc_cycles_per_sec"] = (m["mutps_go_gc_cycles_total"] - lastGC) / dt
			}
			lastGC, lastReconf, lastT = m["mutps_go_gc_cycles_total"], m["mutps_reconfigurations_total"], now
			return ex
		}
	}
	if r.benchJSON != "" {
		runner.Emit = func(rec benchfmt.Record) {
			if err := benchfmt.Append(r.benchJSON, rec); err != nil {
				log.Fatal(err)
			}
		}
	}
	recs, err := runner.Run()
	if err != nil {
		log.Fatal(err)
	}

	// Per-phase summary in script order: mean window throughput and the
	// worst window P99 — the quick-look version of the recovery curve.
	fmt.Printf("scenario %s: %d windows\n", sc.Name, len(recs))
	for _, ph := range sc.Phases {
		var ops, secs, worstP99 float64
		for _, rec := range recs {
			if rec.Phase != ph.Name {
				continue
			}
			ops += float64(rec.Ops)
			if rec.OpsPerSec > 0 {
				secs += float64(rec.Ops) / rec.OpsPerSec
			}
			if rec.P99Ns > worstP99 {
				worstP99 = rec.P99Ns
			}
		}
		if secs == 0 {
			continue
		}
		fmt.Printf("  %-20s %10.0f ops/s  worst-window P99 %v\n",
			ph.Name, ops/secs, time.Duration(worstP99).Round(time.Microsecond))
	}
	if n := backlogged.Load(); n > 0 {
		fmt.Printf("backpressure: server shed %d requests (retried)\n", n)
	}
	if r.benchJSON != "" {
		fmt.Printf("%d window records appended to %s\n", len(recs), r.benchJSON)
	}
}

// sparseRun carries the sparse-activity parameters from flag parsing:
// hold -conns open connections, drive only an -active-fraction subset at
// any instant, and rotate which connections are active. This is the
// million-connection front-end workload shape — most clients idle, a few
// bursting — that separates the transports: per-connection goroutines and
// buffers charge for every open socket, the epoll transport only for the
// active ones.
type sparseRun struct {
	addr      string
	conns     int
	fraction  float64
	inflight  int
	mixName   string
	mix       workload.Mix
	sizeDist  workload.SizeDist
	keys      uint64
	theta     float64
	valueSize int
	ops       int
	opTimeout time.Duration
	benchJSON string
}

// sparseBurstOps is how many pipelined requests one activation issues
// before the worker rotates to the next connection. Short enough that
// every connection cycles through idle many times per run, long enough to
// amortize the wakeup.
const sparseBurstOps = 32

// requireNOFILE fails fast, before any dialing, when the fd limit cannot
// cover the requested connection count — a late EMFILE after thousands of
// dials is a much worse error message.
func requireNOFILE(need int) {
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err != nil {
		return // no rlimit introspection here: let a real dial error surface
	}
	if rl.Cur < uint64(need) {
		log.Fatalf("RLIMIT_NOFILE is %d but this run needs about %d file descriptors "+
			"(-conns plus headroom); raise it with `ulimit -n %d` or lower -conns",
			rl.Cur, need, need)
	}
}

// runSparse opens the full connection population, then lets a worker pool
// the size of the active fraction claim connections round-robin, each
// issuing one short pipelined burst per claim. Instantaneous concurrency
// equals the pool size, so the server sees fraction×conns active and the
// rest idle at every moment, with the active set continuously rotating.
func runSparse(r sparseRun) {
	if r.fraction <= 0 || r.fraction > 1 {
		log.Fatalf("-active-fraction must be in (0, 1], got %g", r.fraction)
	}
	requireNOFILE(r.conns + 64)
	win := r.inflight
	if win < 8 {
		win = 8
	}

	pcs := make([]*netserver.PipelineClient, r.conns)
	dialStart := time.Now()
	dialers := min(64, r.conns)
	var dialErr atomic.Value
	var nextDial atomic.Int64
	var dwg sync.WaitGroup
	for d := 0; d < dialers; d++ {
		dwg.Add(1)
		go func() {
			defer dwg.Done()
			for dialErr.Load() == nil {
				i := int(nextDial.Add(1)) - 1
				if i >= r.conns {
					return
				}
				pc, err := netserver.DialPipeline(r.addr, win)
				if err != nil {
					dialErr.Store(err)
					return
				}
				pcs[i] = pc
			}
		}()
	}
	dwg.Wait()
	if err, _ := dialErr.Load().(error); err != nil {
		log.Fatalf("dialing %d connections: %v (server -max-conns or its RLIMIT_NOFILE too low?)",
			r.conns, err)
	}
	fmt.Printf("%d connections open in %v\n", r.conns, time.Since(dialStart).Round(time.Millisecond))
	defer func() {
		for _, pc := range pcs {
			pc.Close()
		}
	}()

	// Let the accept storm drain and idle buffers strip before measuring.
	time.Sleep(500 * time.Millisecond)

	active := int(float64(r.conns)*r.fraction + 0.5)
	active = max(min(active, r.conns), 1)

	hist := obs.NewHistogram(active)
	locks := make([]sync.Mutex, r.conns)
	var remaining, cursor atomic.Int64
	remaining.Store(int64(r.ops))
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < active; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			gen := workload.NewGenerator(workload.Config{
				Keys: r.keys, Theta: r.theta, Mix: r.mix,
				ValueSize: r.sizeDist, Seed: uint64(w + 1),
			})
			buf := make([]byte, r.valueSize)
			window := make([]sparseInflight, 0, win)
			for {
				burst := sparseBurstOps
				if n := remaining.Add(-sparseBurstOps); n < 0 {
					burst += int(n) // final partial burst
					if burst <= 0 {
						return
					}
				}
				// Round-robin claim; the mutex only matters when the cursor
				// laps a still-busy connection (active ≈ conns).
				i := int(cursor.Add(1)-1) % r.conns
				locks[i].Lock()
				window = sparseDrive(w, pcs[i], gen, buf, window, burst, hist)
				locks[i].Unlock()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	after := serverGCSnapshot(r.addr, r.opTimeout)

	snap := hist.Snapshot()
	pct := func(p float64) time.Duration { return time.Duration(snap.Quantile(p)) }
	opsPerSec := float64(snap.Count) / elapsed.Seconds()
	fmt.Printf("sparse: %d conns, %d active at a time (fraction %g), burst %d, window %d\n",
		r.conns, active, r.fraction, sparseBurstOps, win)
	fmt.Printf("%d ops in %v\n", snap.Count, elapsed.Round(time.Millisecond))
	fmt.Printf("throughput: %.0f ops/s\n", opsPerSec)
	fmt.Printf("latency: P50 %v  P95 %v  P99 %v  max %v\n",
		pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), time.Duration(snap.Max).Round(time.Microsecond))
	if n := backlogged.Load(); n > 0 {
		fmt.Printf("backpressure: server shed %d requests\n", n)
	}
	sv := func(k string) float64 {
		if after == nil {
			return 0
		}
		return after[k]
	}
	if after != nil {
		fmt.Printf("server: %.0f goroutines, %.0f conns (%.0f idle), leased buffers %.1f KiB, heap live %.1f MiB, RSS %.1f MiB\n",
			sv("mutps_go_goroutines"), sv("mutps_net_connections"), sv("mutps_net_idle_conns"),
			sv("mutps_net_leased_buffer_bytes")/1024,
			sv("mutps_go_heap_live_bytes")/(1<<20), sv("mutps_proc_rss_bytes")/(1<<20))
	}
	if r.benchJSON != "" {
		rec := benchfmt.New("sparse-net")
		rec.Config = map[string]any{
			"conns":           r.conns,
			"active_fraction": r.fraction,
			"active_conns":    active,
			"inflight":        win,
			"mix":             r.mixName,
		}
		rec.Ops = snap.Count
		rec.OpsPerSec = opsPerSec
		rec.P50Ns = float64(snap.Quantile(0.50))
		rec.P99Ns = float64(snap.Quantile(0.99))
		rec.Extra = map[string]any{
			"max_ns":              snap.Max,
			"backlogged":          backlogged.Load(),
			"server_goroutines":   sv("mutps_go_goroutines"),
			"server_idle_conns":   sv("mutps_net_idle_conns"),
			"server_leased_bytes": sv("mutps_net_leased_buffer_bytes"),
			"server_heap_live":    sv("mutps_go_heap_live_bytes"),
			"server_rss_bytes":    sv("mutps_proc_rss_bytes"),
		}
		appendBench(r.benchJSON, rec)
	}
}

// sparseInflight pairs a pipelined future with its send time.
type sparseInflight struct {
	fut *netserver.Future
	t0  time.Time
}

// sparseDrive issues one activation burst on pc: n ops pipelined through
// the (reused) window slice, every response drained before returning so
// the connection goes back to fully idle. Returns the window slice for
// reuse by the next burst.
func sparseDrive(shard int, pc *netserver.PipelineClient,
	gen interface{ Next() workload.Request }, buf []byte,
	window []sparseInflight, n int, hist *obs.Histogram) []sparseInflight {
	drainOldest := func() {
		f := window[0]
		switch _, _, err := f.fut.Wait(); {
		case err == nil:
			hist.Record(shard, uint64(time.Since(f.t0)))
		case errors.Is(err, netserver.ErrBacklogged):
			backlogged.Add(1)
		default:
			log.Fatalf("sparse worker %d: %v", shard, err)
		}
		f.fut.Release()
		window = append(window[:0], window[1:]...)
	}
	var scanPl [4]byte
	for i := 0; i < n; i++ {
		req := gen.Next()
		var op byte
		var payload []byte
		switch req.Op {
		case workload.OpGet:
			op = netserver.OpGet
		case workload.OpPut:
			op = netserver.OpPut
			payload = buf
			if req.ValueSize > 0 && req.ValueSize != len(buf) {
				payload = make([]byte, req.ValueSize)
			}
		case workload.OpDelete:
			op = netserver.OpDelete
		case workload.OpScan:
			op = netserver.OpScan
			binary.LittleEndian.PutUint32(scanPl[:], uint32(req.ScanCount))
			payload = scanPl[:]
		}
		if len(window) == cap(window) {
			pc.Flush()
			drainOldest()
		}
		f, err := pc.Send(op, req.Key, payload)
		if err != nil {
			log.Fatalf("sparse worker %d: %v", shard, err)
		}
		window = append(window, sparseInflight{fut: f, t0: time.Now()})
	}
	pc.Flush()
	for len(window) > 0 {
		drainOldest()
	}
	return window[:0]
}

// runPipelined drives one connection with depth requests in flight using
// the pooled-future pipelined client: futures are recycled with Release
// after each response, so the client side allocates nothing per request in
// steady state. Latency is send-to-response (it includes queueing in the
// pipeline window, as for any pipelined client) and lands in the shared
// histogram under this client's shard.
func runPipelined(c int, addr string, depth, valueSize, ops int,
	gen interface{ Next() workload.Request }, hist *obs.Histogram) {
	pc, err := netserver.DialPipeline(addr, depth)
	if err != nil {
		log.Fatal(err)
	}
	defer pc.Close()
	buf := make([]byte, valueSize)
	var scanPl [4]byte
	type inflight struct {
		fut *netserver.Future
		t0  time.Time
	}
	window := make([]inflight, 0, depth)
	drainOldest := func() {
		f := window[0]
		switch _, _, err := f.fut.Wait(); {
		case err == nil:
			hist.Record(c, uint64(time.Since(f.t0)))
		case errors.Is(err, netserver.ErrBacklogged):
			// The stream stays in sync on a shed request; resending here
			// would reorder the FIFO window, so count it and move on.
			backlogged.Add(1)
		default:
			log.Fatalf("client %d: %v", c, err)
		}
		f.fut.Release()
		window = append(window[:0], window[1:]...)
	}
	for i := 0; i < ops; i++ {
		req := gen.Next()
		var op byte
		var payload []byte
		switch req.Op {
		case workload.OpGet:
			op = netserver.OpGet
		case workload.OpPut:
			op = netserver.OpPut
			payload = buf
			if req.ValueSize > 0 && req.ValueSize != len(buf) {
				payload = make([]byte, req.ValueSize)
			}
		case workload.OpDelete:
			op = netserver.OpDelete
		case workload.OpScan:
			op = netserver.OpScan
			binary.LittleEndian.PutUint32(scanPl[:], uint32(req.ScanCount))
			payload = scanPl[:]
		}
		if len(window) == cap(window) {
			pc.Flush()
			drainOldest()
		}
		f, err := pc.Send(op, req.Key, payload)
		if err != nil {
			log.Fatalf("client %d: %v", c, err)
		}
		window = append(window, inflight{fut: f, t0: time.Now()})
	}
	pc.Flush()
	for len(window) > 0 {
		drainOldest()
	}
}
